#include "common/json.h"

#include <cstdlib>
#include <stdexcept>

namespace vc::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string_value = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          Value v;
          v.type = Value::Type::kBool;
          v.bool_value = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          Value v;
          v.type = Value::Type::kBool;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      v.object_items.emplace_back(std::move(key), parse_value());
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_items.push_back(parse_value());
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as-is — the simulator never writes them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double d = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - start);
    Value v;
    v.type = Value::Type::kNumber;
    v.number_value = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_items) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key \"" + key + "\"");
  return *v;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace vc::json
