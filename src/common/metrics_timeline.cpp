#include "common/metrics_timeline.h"

#include <algorithm>

#include "common/json.h"
#include "common/tracer.h"

namespace vc {
namespace {

/// lower_bound over a name-sorted column vector; no allocation.
template <class Col>
const Col* find_column(const std::vector<Col>& cols, const std::string& name) {
  const auto it = std::lower_bound(
      cols.begin(), cols.end(), name,
      [](const Col& col, const std::string& key) { return col.name < key; });
  return it != cols.end() && it->name == name ? &*it : nullptr;
}

/// Merge-inserts any registry instrument missing from `cols`. Both sequences
/// are name-sorted and instruments are never removed, so a single in-order
/// walk finds every gap; `make` builds the new column (the only allocating
/// step, paid once per column at discovery).
template <class Map, class Col, class Make>
void sync_one(const Map& instruments, std::vector<Col>& cols, const Make& make) {
  if (instruments.size() == cols.size()) return;  // sorted + same size => identical names
  std::size_t i = 0;
  for (const auto& [name, instrument] : instruments) {
    (void)instrument;
    if (i == cols.size() || cols[i].name != name) {
      cols.insert(cols.begin() + static_cast<std::ptrdiff_t>(i), make(name));
    }
    ++i;
  }
}

void append_int_array(std::string& out, const char* key, const std::vector<std::int64_t>& ring,
                      std::size_t start_slot, std::size_t count, std::size_t capacity) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t j = 0; j < count; ++j) {
    if (j) out += ",";
    out += std::to_string(ring[(start_slot + j) % capacity]);
  }
  out += "]";
}

void append_double_array(std::string& out, const char* key, const std::vector<double>& ring,
                         std::size_t start_slot, std::size_t count, std::size_t capacity) {
  out += "\"";
  out += key;
  out += "\":[";
  for (std::size_t j = 0; j < count; ++j) {
    if (j) out += ",";
    out += json::format_number(ring[(start_slot + j) % capacity]);
  }
  out += "]";
}

void append_name(std::string& out, const std::string& name) {
  out += "{\"name\":\"";
  Tracer::append_json_escaped(out, name.c_str());
  out += "\"";
}

}  // namespace

MetricsTimeline::MetricsTimeline() : MetricsTimeline(Config{}) {}

MetricsTimeline::MetricsTimeline(Config config) : config_(config) {
  if (config_.capacity < 1) config_.capacity = 1;
  if (config_.interval < micros(1)) config_.interval = micros(1);
  ts_us_.assign(config_.capacity, 0);
}

void MetricsTimeline::sample_now(SimTime at) {
  if (registry_ == nullptr) return;
  sync_columns();
  const std::size_t cap = config_.capacity;
  const std::size_t slot = total_ % cap;
  const bool evicting = total_ >= cap;
  const std::size_t evicted = evicting ? total_ - cap : 0;
  ts_us_[slot] = at.micros();

  // sync_columns() left every column list the same size as (and, both being
  // name-sorted with no removals, aligned 1:1 with) its registry map, so the
  // walks below zip by index without comparing names.
  std::size_t i = 0;
  for (const auto& [name, counter] : registry_->counters()) {
    (void)name;
    CounterColumn& col = counter_cols_[i++];
    const std::int64_t value = counter.value();
    const std::int64_t delta = value - col.prev;
    col.prev = value;
    col.latest_delta = delta;
    if (evicting && evicted >= col.first_sample) col.base += col.deltas[slot];
    col.deltas[slot] = delta;
  }
  i = 0;
  for (const auto& [name, gauge] : registry_->gauges()) {
    (void)name;
    GaugeColumn& col = gauge_cols_[i++];
    col.latest = gauge.value();
    col.values[slot] = col.latest;
  }
  i = 0;
  for (const auto& [name, histogram] : registry_->histograms()) {
    (void)name;
    HistogramColumn& col = histogram_cols_[i++];
    const RunningStats& stats = histogram.stats();
    const std::int64_t count = static_cast<std::int64_t>(stats.count());
    const std::int64_t delta = count - col.prev_count;
    col.prev_count = count;
    col.latest_count_delta = delta;
    col.latest_mean = stats.count() > 0 ? stats.mean() : 0.0;
    col.latest_max = stats.count() > 0 ? stats.max() : 0.0;
    if (evicting && evicted >= col.first_sample) col.count_base += col.count_deltas[slot];
    col.count_deltas[slot] = delta;
    col.means[slot] = col.latest_mean;
    col.maxes[slot] = col.latest_max;
  }

  last_sample_us_ = at.micros();
  ++total_;
  if (observer_ != nullptr) observer_->on_sample(*this, at);
}

void MetricsTimeline::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (observer_ != nullptr) observer_->on_finalize(*this, SimTime{last_sample_us_});
}

void MetricsTimeline::sync_columns() {
  const std::size_t cap = config_.capacity;
  const std::size_t first = total_;
  sync_one(registry_->counters(), counter_cols_, [cap, first](const std::string& name) {
    CounterColumn col;
    col.name = name;
    col.first_sample = first;
    col.deltas.assign(cap, 0);
    return col;
  });
  sync_one(registry_->gauges(), gauge_cols_, [cap, first](const std::string& name) {
    GaugeColumn col;
    col.name = name;
    col.first_sample = first;
    col.values.assign(cap, 0.0);
    return col;
  });
  sync_one(registry_->histograms(), histogram_cols_, [cap, first](const std::string& name) {
    HistogramColumn col;
    col.name = name;
    col.first_sample = first;
    col.count_deltas.assign(cap, 0);
    col.means.assign(cap, 0.0);
    col.maxes.assign(cap, 0.0);
    return col;
  });
}

const MetricsTimeline::CounterColumn* MetricsTimeline::find_counter(const std::string& name) const {
  return find_column(counter_cols_, name);
}
const MetricsTimeline::GaugeColumn* MetricsTimeline::find_gauge(const std::string& name) const {
  return find_column(gauge_cols_, name);
}
const MetricsTimeline::HistogramColumn* MetricsTimeline::find_histogram(
    const std::string& name) const {
  return find_column(histogram_cols_, name);
}

std::string MetricsTimeline::to_json() const {
  const std::size_t cap = config_.capacity;
  const std::size_t retained = retained_samples();
  const std::size_t oldest = oldest_sample();
  std::string out = "{\"interval_us\":" + std::to_string(config_.interval.micros());
  out += ",\"total_samples\":" + std::to_string(total_);
  out += ",\"samples\":" + std::to_string(retained);
  out += ",\"dropped\":" + std::to_string(dropped_samples());
  out += ",\"ts_us\":[";
  for (std::size_t j = 0; j < retained; ++j) {
    if (j) out += ",";
    out += std::to_string(ts_us_[(oldest + j) % cap]);
  }
  out += "],\"counters\":[";
  bool first = true;
  for (const CounterColumn& col : counter_cols_) {
    const std::size_t start = std::max(col.first_sample, oldest);
    if (!first) out += ",";
    first = false;
    append_name(out, col.name);
    out += ",\"start\":" + std::to_string(start);
    out += ",\"base\":" + std::to_string(col.base) + ",";
    append_int_array(out, "deltas", col.deltas, start % cap, total_ - start, cap);
    out += "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const GaugeColumn& col : gauge_cols_) {
    const std::size_t start = std::max(col.first_sample, oldest);
    if (!first) out += ",";
    first = false;
    append_name(out, col.name);
    out += ",\"start\":" + std::to_string(start) + ",";
    append_double_array(out, "values", col.values, start % cap, total_ - start, cap);
    out += "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramColumn& col : histogram_cols_) {
    const std::size_t start = std::max(col.first_sample, oldest);
    if (!first) out += ",";
    first = false;
    append_name(out, col.name);
    out += ",\"start\":" + std::to_string(start);
    out += ",\"count_base\":" + std::to_string(col.count_base) + ",";
    append_int_array(out, "count_deltas", col.count_deltas, start % cap, total_ - start, cap);
    out += ",";
    append_double_array(out, "mean", col.means, start % cap, total_ - start, cap);
    out += ",";
    append_double_array(out, "max", col.maxes, start % cap, total_ - start, cap);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace vc
