#include "common/geo.h"

#include <cmath>
#include <numbers>

namespace vc {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
// Speed of light in fiber, km per second (~0.67 c).
constexpr double kFiberKmPerSec = 200'000.0;

double deg2rad(double d) { return d * std::numbers::pi / 180.0; }

}  // namespace

double great_circle_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg);
  const double lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2.0);
  const double t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

SimDuration propagation_delay(const GeoPoint& a, const GeoPoint& b, double inflation,
                              SimDuration base) {
  const double km = great_circle_km(a, b) * inflation;
  const double sec = km / kFiberKmPerSec;
  return base + seconds_f(sec);
}

}  // namespace vc
