// Minimal leveled logger. Defaults to warnings-and-above so tests and bench
// binaries stay quiet; experiments can raise verbosity for debugging.
#pragma once

#include <sstream>
#include <string>

namespace vc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_write(LogLevel level, const std::string& msg);
}

/// Stream-style logging: VC_LOG(kInfo) << "joined session " << id;
#define VC_LOG(level)                                            \
  if (::vc::LogLevel::level < ::vc::log_level()) {               \
  } else                                                         \
    ::vc::detail::LogLine(::vc::LogLevel::level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace vc
