// Lightweight metrics registry: named counters, gauges, and histogram
// summaries that simulation components (shapers, relays, client controllers)
// update inline while a session runs.
//
// A registry is per-session state: each simulated session owns exactly one,
// and nothing here is synchronized. Parallel experiment runs give every
// session its own registry and merge the snapshots afterwards in a fixed
// order (see runner::ExperimentRunner), which keeps aggregate reports
// bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace vc {

class MetricsRegistry {
 public:
  /// Monotonic event count (packets forwarded, joins, timeouts, ...).
  class Counter {
   public:
    void inc() { ++value_; }
    void add(std::int64_t delta) { value_ += delta; }
    std::int64_t value() const { return value_; }

   private:
    std::int64_t value_ = 0;
  };

  /// Last-written value (backlog depth, current rate target, ...).
  class Gauge {
   public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Streaming summary of observed values (join latency, queue delay, ...).
  class Histogram {
   public:
    void observe(double value) { stats_.add(value); }
    const RunningStats& stats() const { return stats_; }

   private:
    RunningStats stats_;
  };

  /// Looks up (creating on first use) the named instrument. The returned
  /// reference stays valid for the registry's lifetime, so components can
  /// resolve names once and update through the pointer on hot paths.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Name-ordered iteration, for deterministic report emission.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace vc
