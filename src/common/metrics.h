// Lightweight metrics registry: named counters, gauges, and histogram
// summaries that simulation components (shapers, relays, client controllers)
// update inline while a session runs.
//
// A registry is per-session state: each simulated session owns exactly one,
// and nothing here is synchronized. Parallel experiment runs give every
// session its own registry and merge the snapshots afterwards in a fixed
// order (see runner::ExperimentRunner), which keeps aggregate reports
// bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <type_traits>

#include "common/stats.h"

namespace vc {

class MetricsRegistry {
 public:
  /// Monotonic event count (packets forwarded, joins, timeouts, ...).
  class Counter {
   public:
    void inc() { ++value_; }
    void add(std::int64_t delta) { value_ += delta; }
    std::int64_t value() const { return value_; }

   private:
    std::int64_t value_ = 0;
  };

  /// Last-written value (backlog depth, current rate target, ...). Also
  /// tracks the high-water mark of everything ever set(), so end-of-run
  /// reports can surface peak queue depths even when the final value has
  /// drained back to zero.
  class Gauge {
   public:
    void set(double value) {
      value_ = value;
      if (!seen_ || value > max_) {
        max_ = value;
        seen_ = true;
      }
    }
    double value() const { return value_; }
    /// Largest value ever set; 0 before the first set().
    double max() const { return seen_ ? max_ : 0.0; }

   private:
    double value_ = 0.0;
    double max_ = 0.0;
    bool seen_ = false;
  };

  /// Streaming summary of observed values (join latency, queue delay, ...).
  class Histogram {
   public:
    void observe(double value) { stats_.add(value); }
    const RunningStats& stats() const { return stats_; }

   private:
    RunningStats stats_;
  };

  /// Looks up (creating on first use) the named instrument. The returned
  /// reference stays valid for the registry's lifetime, so components can
  /// resolve names once and update through the pointer on hot paths.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Name-ordered iteration, for deterministic report emission. The ordering
  // contract is pinned: these maps compare keys with std::less<std::string>
  // (byte-wise operator<), never a locale-aware collation, and instruments
  // are created-on-first-use but NEVER removed — so iteration order depends
  // only on the set of names, not on insertion order, locale, or time. Both
  // report emission and MetricsTimeline's snapshot column order rely on this.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  static_assert(std::is_same_v<std::map<std::string, Counter>::key_compare,
                               std::less<std::string>>,
                "registry iteration order must be plain byte-wise name order");
};

}  // namespace vc
