// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator takes an explicit Rng (or a
// seed) so that experiments are exactly reproducible — reproducibility is
// design goal D3 of the paper's methodology.
#pragma once

#include <cstdint>
#include <cmath>
#include <string_view>

namespace vc {

/// xoshiro256** — fast, high-quality, and tiny. Seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent child generator; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt) const;
  /// Derives a child keyed by a label, for readable stream separation.
  Rng fork(std::string_view label) const;

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Exponential with the given mean.
  double exponential(double mean);
  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);
  /// Picks an index in [0, n) uniformly.
  std::size_t index(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vc
