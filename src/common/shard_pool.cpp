#include "common/shard_pool.h"

#include <algorithm>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <immintrin.h>
#endif

namespace vc {
namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spins before a worker parks / the caller yields. Short: a fan-out shard
/// is a few microseconds of work, so a hot handoff resolves well inside this
/// budget and a cold one should release the core quickly.
constexpr int kSpinBudget = 2048;

}  // namespace

ShardPool::ShardPool(int workers) {
  workers = std::clamp(workers, 0, 64);
  if (workers > 0) {
    lanes_ = std::make_unique<Lane[]>(static_cast<std::size_t>(workers));
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

ShardPool::~ShardPool() {
  stop_.store(true, std::memory_order_seq_cst);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lk{park_mutex_};
    park_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

int ShardPool::auto_workers(int shards) {
  if (shards <= 1) return 0;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int spare = hw > 1 ? hw - 1 : 0;
  return std::clamp(shards - 1, 0, spare);
}

void ShardPool::record_error() {
  std::lock_guard<std::mutex> lk{error_mutex_};
  if (!error_) error_ = std::current_exception();
}

void ShardPool::execute_strided(int first, int stride) {
  const int shards = shards_;
  const JobFn fn = fn_;
  void* const ctx = ctx_;
  for (int s = first; s < shards; s += stride) {
    try {
      fn(ctx, s);
    } catch (...) {
      record_error();
    }
  }
}

void ShardPool::run_inline(int shards, JobFn fn, void* ctx) {
  // Same all-shards-run, first-exception-wins semantics as the pooled path.
  std::exception_ptr err;
  for (int s = 0; s < shards; ++s) {
    try {
      fn(ctx, s);
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

void ShardPool::run_impl(int shards, JobFn fn, void* ctx) {
  fn_ = fn;
  ctx_ = ctx;
  shards_ = shards;
  // seq_cst pairs with the seq_cst parked_ increment in park(): either we see
  // the worker as parked and notify it, or its under-lock epoch re-check sees
  // this bump — no lost wakeup (classic Dekker store/load pair).
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard<std::mutex> lk{park_mutex_};
    park_cv_.notify_all();
  }

  // The caller is lane 0 and works instead of waiting.
  const int stride = workers() + 1;
  execute_strided(0, stride);

  // Join: every worker must report this epoch done before the next run may
  // overwrite the job slot. The acquire-loads make all shard writes visible.
  for (int w = 0; w < workers(); ++w) {
    int spins = 0;
    while (lanes_[w].done.load(std::memory_order_acquire) != epoch) {
      if (++spins >= kSpinBudget) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
    }
  }

  if (error_) {  // race-free: all writers joined above
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk{error_mutex_};
      err = error_;
      error_ = nullptr;
    }
    std::rethrow_exception(err);
  }
}

void ShardPool::worker_main(int lane) {
  std::uint64_t done = 0;
  int spins = 0;
  for (;;) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    if (e == done) {
      if (++spins >= kSpinBudget) {
        park(done);
        spins = 0;
      } else {
        cpu_relax();
      }
      continue;
    }
    // New epoch published: the job-slot writes happened-before the epoch
    // bump we acquire-loaded, so fn_/ctx_/shards_ are safe to read.
    execute_strided(lane + 1, workers() + 1);
    done = e;
    lanes_[lane].done.store(e, std::memory_order_release);
    spins = 0;
  }
}

void ShardPool::park(std::uint64_t seen_epoch) {
  parked_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lk{park_mutex_};
    park_cv_.wait(lk, [&] {
      return epoch_.load(std::memory_order_seq_cst) != seen_epoch ||
             stop_.load(std::memory_order_seq_cst);
    });
  }
  parked_.fetch_sub(1, std::memory_order_seq_cst);
}

}  // namespace vc
