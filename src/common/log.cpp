#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vc {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_write(LogLevel level, const std::string& msg) {
  // One formatted write under a mutex: parallel ExperimentRunner tasks were
  // interleaving partial lines on stderr (stdio locks per fprintf call, not
  // per log line — a long message can still split across buffer flushes).
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
  std::fflush(stderr);
}
}  // namespace detail

}  // namespace vc
