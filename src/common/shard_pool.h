// A tiny fork-join pool for sharding one session's work across threads.
//
// The runner's thread pool parallelizes *across* sessions; this one
// parallelizes *within* a session (relay fan-out shards, PR 3). The design
// constraints are different from a task queue:
//   * A fan-out dispatch happens per ingested media packet, so the fork-join
//     round trip must cost well under the sharded work itself. Workers spin
//     briefly on an epoch counter before parking on a condition variable, and
//     the caller participates in the work instead of blocking idle.
//   * Shard assignment is static and strided — shard s runs on lane
//     (s mod (workers+1)), lane 0 being the caller. No work-stealing counter
//     means no claim/reset ABA window between epochs: a worker only touches
//     the published job after acquire-loading an epoch the caller
//     release-published it under, and the caller only publishes the next job
//     after acquire-loading every worker's done-epoch. Those two edges are
//     the whole memory-ordering story (TSan-clean by construction).
//   * Determinism is the caller's contract, not ours: shards may run in any
//     order on any lane, so callers stage side effects per shard and merge
//     them in shard-index order afterwards (see RelayServer).
//
// A pool with zero workers degenerates to an inline serial loop over the
// shards on the calling thread — same API, same staged semantics, no
// threads. That is the configuration used on single-core machines and in
// determinism tests that want the staged code path without scheduler noise.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vc {

class ShardPool {
 public:
  /// Spawns `workers` threads (clamped to [0, 64]). 0 is valid: run() then
  /// executes shards inline on the caller.
  explicit ShardPool(int workers);
  ~ShardPool();
  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Picks a worker count for K-way sharding on this machine: K-1 lanes
  /// beyond the caller, but never more than the spare hardware threads. On a
  /// single-core host this is 0 — sharding then runs inline, preserving the
  /// staged semantics without futile context switching.
  static int auto_workers(int shards);

  /// Invokes job(s) exactly once for every shard s in [0, shards), possibly
  /// concurrently, and returns when all shards have finished (a full
  /// fork-join barrier: every shard's writes are visible to the caller).
  /// `job` must be invocable as void(int) and safe to call concurrently for
  /// distinct shards. run() itself must not be called re-entrantly or from
  /// two threads at once. If any shard throws, the remaining shards still
  /// run and the first captured exception is rethrown on the caller.
  template <class F>
  void run(int shards, F&& job) {
    static_assert(std::is_invocable_v<F&, int>, "shard job must be callable as void(int)");
    if (shards <= 0) return;
    if (threads_.empty() || shards == 1) {
      run_inline(shards, &invoke_thunk<F>, const_cast<void*>(static_cast<const void*>(std::addressof(job))));
      return;
    }
    run_impl(shards, &invoke_thunk<F>, const_cast<void*>(static_cast<const void*>(std::addressof(job))));
  }

 private:
  using JobFn = void (*)(void* ctx, int shard);

  template <class F>
  static void invoke_thunk(void* ctx, int shard) {
    (*static_cast<std::remove_reference_t<F>*>(ctx))(shard);
  }

  /// Per-worker completion epoch, cacheline-isolated so the caller's
  /// join-spin on one worker never invalidates another worker's line.
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> done{0};
  };

  void run_impl(int shards, JobFn fn, void* ctx);
  void run_inline(int shards, JobFn fn, void* ctx);
  /// Runs shards {first, first+stride, ...} < shards_, capturing the first
  /// exception into error_.
  void execute_strided(int first, int stride);
  void worker_main(int lane);
  void park(std::uint64_t seen_epoch);
  void record_error();

  // Job slot: written by the caller strictly before the epoch release-bump,
  // read by workers strictly after the matching acquire-load. Plain fields.
  JobFn fn_ = nullptr;
  void* ctx_ = nullptr;
  int shards_ = 0;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::mutex error_mutex_;
  std::exception_ptr error_;
  std::unique_ptr<Lane[]> lanes_;
  std::vector<std::thread> threads_;
};

}  // namespace vc
