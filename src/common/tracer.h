// Flight-recorder tracing for the simulator.
//
// A Tracer is a per-session ring buffer of sim-time trace records — spans
// (an activity with a begin and an end), instants (a point event), and
// counters (a sampled value). The design goals, in order:
//
//  1. Zero cost when off. Components hold a `Tracer*` that is nullptr by
//     default; when attached but disabled, recording is a single load+branch.
//  2. Zero allocation on the hot path. The ring is preallocated; names are
//     interned `const char*` (string literals, or strings pinned through
//     `intern()` off the hot path); a record is 32 bytes.
//  3. Deterministic output. Timestamps are sim-time, every record is written
//     on the session's event-loop thread, and each session owns its tracer —
//     so the exported trace is byte-identical across runner thread counts
//     and fan-out shard counts (see DESIGN.md §6).
//
// When the ring wraps, the oldest records are overwritten and a dropped
// counter keeps the total honest (flight-recorder semantics: you always keep
// the *latest* window of activity). Export is Chrome trace-event JSON, which
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/time.h"

namespace vc {

class Tracer {
 public:
  enum class Phase : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

  /// One trace record. `name` must outlive the tracer (string literal or a
  /// string pinned via intern()). `value` is a small payload — batch size,
  /// queue depth, milliseconds — carried in the exported event's args.
  struct Record {
    const char* name;
    std::int64_t ts_us;
    std::int64_t dur_us;  // 0 for instants and counters
    float value;
    Phase phase;
  };
  static_assert(sizeof(Record) <= 32, "trace records must stay cache-friendly");

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Recording is off until enabled; a disabled tracer's record calls are a
  /// single branch. (Components treat a null Tracer* the same way, so the
  /// fully-unattached cost is also one branch.)
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Per-shard / per-worker detail that is deliberately OUTSIDE the
  /// determinism contract (like MetricsRegistry's relay.shard<i>.* family).
  /// Off by default; the trace-determinism e2e test runs without it.
  void set_shard_detail(bool on) { shard_detail_ = on; }
  bool shard_detail() const { return shard_detail_; }

  void span(const char* name, SimTime begin, SimTime end, double value = 0.0) {
    if (!enabled_) return;
    push(name, begin.micros(), (end - begin).micros(), value, Phase::kSpan);
  }
  void instant(const char* name, SimTime at, double value = 0.0) {
    if (!enabled_) return;
    push(name, at.micros(), 0, value, Phase::kInstant);
  }
  void counter(const char* name, SimTime at, double value) {
    if (!enabled_) return;
    push(name, at.micros(), 0, value, Phase::kCounter);
  }

  /// Pins a dynamically-built name for the lifetime of this tracer and
  /// returns a stable pointer usable in record calls. NOT for hot paths —
  /// intern once at attach time, like metric instruments are resolved once.
  const char* intern(const std::string& name);

  std::size_t capacity() const { return ring_.size(); }
  /// Total records ever pushed (kept + dropped).
  std::uint64_t recorded() const { return total_; }
  /// Records overwritten because the ring wrapped.
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  /// Records currently held in the ring.
  std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_) : ring_.size();
  }
  std::uint64_t spans_recorded() const { return span_count_; }
  std::uint64_t instants_recorded() const { return instant_count_; }
  std::uint64_t counters_recorded() const { return counter_count_; }

  /// Forget every record (drop/total counters included); keeps capacity,
  /// enabled flag, and interned names.
  void clear();

  /// Calls `fn(const Record&)` for each held record, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    const std::size_t cap = ring_.size();
    // Oldest record: head_ when wrapped, 0 otherwise.
    const std::size_t start = total_ > cap ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t idx = start + i;
      if (idx >= cap) idx -= cap;
      fn(ring_[idx]);
    }
  }

  /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form).
  /// Spans export as ph:"X" complete events, instants as ph:"i", counters as
  /// ph:"C". Names are JSON-escaped; `otherData` carries the drop counter.
  std::string to_chrome_json() const;

  /// Appends a JSON-escaped copy of `s` (quotes not included) to `out`.
  static void append_json_escaped(std::string& out, const char* s);

 private:
  void push(const char* name, std::int64_t ts, std::int64_t dur, double value, Phase phase) {
    Record& r = ring_[head_];
    r.name = name;
    r.ts_us = ts;
    r.dur_us = dur;
    r.value = static_cast<float>(value);
    r.phase = phase;
    if (++head_ == ring_.size()) head_ = 0;
    ++total_;
    switch (phase) {
      case Phase::kSpan: ++span_count_; break;
      case Phase::kInstant: ++instant_count_; break;
      case Phase::kCounter: ++counter_count_; break;
    }
  }

  std::vector<Record> ring_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t span_count_ = 0;
  std::uint64_t instant_count_ = 0;
  std::uint64_t counter_count_ = 0;
  bool enabled_ = false;
  bool shard_detail_ = false;
  /// Storage for intern(): deque never relocates elements.
  std::deque<std::string> interned_;
};

}  // namespace vc
