// The cloud side of the benchmark: a simulated internet, provisioned VMs,
// and the VM clock-sync model.
//
// Azure/AWS time-sync services keep tenant clocks within about a millisecond
// of true time (Section 3.1); each VM here gets a small random clock offset,
// which packet captures bake into their timestamps — so lag measurements
// inherit realistic sync error instead of impossible perfection.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "net/network.h"
#include "testbed/locations.h"

namespace vc::testbed {

class CloudTestbed {
 public:
  struct Config {
    std::uint64_t seed = 42;
    /// Std-dev of each VM's clock offset (cloud stratum-1 sync quality).
    double clock_sigma_ms = 0.4;
    net::GeoLatencyModel::Params latency{};
  };

  explicit CloudTestbed(Config config);
  explicit CloudTestbed(std::uint64_t seed);

  net::Network& network() { return *network_; }
  net::EventLoop& loop() { return network_->loop(); }

  /// Provisions a VM at a site; `index` disambiguates multi-VM sites.
  net::Host& create_vm(const VmSite& site, int index = 0);

  /// The VM's clock offset from true time (used when attaching captures;
  /// measurement code never reads it).
  SimDuration clock_offset(const net::Host& host) const;

  /// Runs the event loop until every scheduled event has fired.
  void run_all() { network_->loop().run(); }

 private:
  std::unique_ptr<net::Network> network_;
  Rng rng_;
  double clock_sigma_ms_ = 0.4;
  std::unordered_map<net::IpAddr, SimDuration> clock_offsets_;
};

}  // namespace vc::testbed
