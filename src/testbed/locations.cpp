#include "testbed/locations.h"

#include <stdexcept>

namespace vc::testbed {

const std::vector<VmSite>& table3_sites() {
  static const std::vector<VmSite> kSites = {
      {"US-Central", "US", {41.59, -93.62}, 1},    // Iowa
      {"US-NCentral", "US", {41.88, -87.63}, 1},   // Illinois
      {"US-SCentral", "US", {29.42, -98.49}, 1},   // Texas
      {"US-East", "US", {38.90, -77.45}, 2},       // Virginia
      {"US-West", "US", {37.78, -122.40}, 2},      // California
      {"CH", "Europe", {47.38, 8.54}, 1},          // Switzerland
      {"DE", "Europe", {50.11, 8.68}, 1},          // Germany (Frankfurt)
      {"IE", "Europe", {53.33, -6.25}, 1},         // Ireland
      {"NL", "Europe", {52.37, 4.90}, 1},          // Netherlands
      {"FR", "Europe", {48.86, 2.35}, 1},          // France
      {"UK-South", "Europe", {51.51, -0.13}, 1},   // London
      {"UK-West", "Europe", {51.48, -3.18}, 1},    // Cardiff
  };
  return kSites;
}

std::vector<VmSite> us_sites() {
  std::vector<VmSite> out;
  for (const auto& s : table3_sites()) {
    if (s.region == "US") out.push_back(s);
  }
  return out;
}

std::vector<VmSite> europe_sites() {
  std::vector<VmSite> out;
  for (const auto& s : table3_sites()) {
    if (s.region == "Europe") out.push_back(s);
  }
  return out;
}

const VmSite& site_by_name(const std::string& name) {
  for (const auto& s : table3_sites()) {
    if (s.name == name) return s;
  }
  if (name == residential_us_east().name) return residential_us_east();
  throw std::invalid_argument{"unknown site: " + name};
}

const VmSite& residential_us_east() {
  static const VmSite kHome{"Residential-US-East", "US", {40.34, -74.07}, 1};  // NJ shore
  return kHome;
}

}  // namespace vc::testbed
