// The benchmark's vantage points: the 12 Azure VM sites of Table 3 plus the
// residential east-coast site hosting the two Android phones (Section 5).
#pragma once

#include <string>
#include <vector>

#include "common/geo.h"

namespace vc::testbed {

struct VmSite {
  std::string name;      // Table 3 "Name" column, e.g. "US-East"
  std::string region;    // "US" or "Europe"
  GeoPoint geo;
  int count = 1;         // Table 3 "Count" column
};

/// All 12 sites of Table 3.
const std::vector<VmSite>& table3_sites();

/// Convenience subsets.
std::vector<VmSite> us_sites();
std::vector<VmSite> europe_sites();
const VmSite& site_by_name(const std::string& name);

/// The residential access network on the US east coast where the phones and
/// their Raspberry-Pi WiFi bridge live.
const VmSite& residential_us_east();

}  // namespace vc::testbed
