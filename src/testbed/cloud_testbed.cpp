#include "testbed/cloud_testbed.h"

namespace vc::testbed {

CloudTestbed::CloudTestbed(Config config)
    : network_(std::make_unique<net::Network>(
          std::make_unique<net::GeoLatencyModel>(config.latency), config.seed)),
      rng_(config.seed ^ 0xC10C0FF5E7ULL) {
  clock_sigma_ms_ = config.clock_sigma_ms;
}

CloudTestbed::CloudTestbed(std::uint64_t seed) : CloudTestbed(Config{.seed = seed}) {}

net::Host& CloudTestbed::create_vm(const VmSite& site, int index) {
  std::string name = site.name;
  if (index > 0) name += "-" + std::to_string(index + 1);
  net::Host& host = network_->add_host(std::move(name), site.geo);
  clock_offsets_[host.ip()] = millis_f(rng_.normal(0.0, clock_sigma_ms_));
  return host;
}

SimDuration CloudTestbed::clock_offset(const net::Host& host) const {
  auto it = clock_offsets_.find(host.ip());
  return it == clock_offsets_.end() ? SimDuration::zero() : it->second;
}

}  // namespace vc::testbed
