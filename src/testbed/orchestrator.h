// Coordinated session orchestration (Section 3.1 "coordinated client
// deployments"): brings a meeting up across a host and participants via
// their scripted controllers, fires the media/measurement phase once
// everyone is in, and tears the session down after the configured duration.
// A join timeout guards against sessions whose roster never completes (e.g.
// under heavy loss/shaping): instead of deadlocking the simulation, the
// session fails and reports who was missing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "client/controller.h"
#include "client/vca_client.h"
#include "common/metrics.h"

namespace vc::testbed {

/// How a session ended, delivered to Plan::on_done.
struct SessionOutcome {
  /// True when everyone joined and the media phase ran to completion; false
  /// when the join timeout fired first.
  bool ok = true;
  /// Indices into Plan::participants that had not joined by the timeout
  /// (empty on success).
  std::vector<std::size_t> missing_participants;
};

class SessionOrchestrator {
 public:
  struct Plan {
    client::VcaClient* host = nullptr;
    std::vector<client::VcaClient*> participants;
    /// Gap between consecutive participant join scripts.
    SimDuration join_stagger = millis(400);
    /// Media/measurement phase length once everyone has joined.
    SimDuration media_duration = seconds(30);
    /// Fail the session if the roster is still incomplete this long after
    /// start(). Zero disables the timeout (the pre-timeout behaviour: a
    /// stuck join hangs the session forever).
    SimDuration join_timeout = seconds(120);
    /// Workflow timings for every controller; defaults to the platform's.
    std::optional<client::ClientController::Script> script;
    /// Fired when the roster is complete (start feeders/recorders here).
    std::function<void()> on_all_joined;
    /// Fired exactly once, when the session completes or times out.
    std::function<void(const SessionOutcome&)> on_done;
    /// Optional: controllers record workflow metrics here, and the
    /// orchestrator counts `session.completed` / `session.join_timeouts`.
    MetricsRegistry* metrics = nullptr;
    /// Optional: controllers record reconnection lifecycle instants here.
    Tracer* tracer = nullptr;
    /// Arm automatic reconnection (relay-crash recovery) on every
    /// controller. Each controller's jitter RNG is seeded from
    /// reconnect_seed and its creation index (host first, then participants
    /// in order), so backoff schedules are deterministic and decorrelated.
    std::optional<client::ClientController::ReconnectPolicy> reconnect;
    std::uint64_t reconnect_seed = 0;
  };

  explicit SessionOrchestrator(Plan plan);
  SessionOrchestrator(const SessionOrchestrator&) = delete;
  SessionOrchestrator& operator=(const SessionOrchestrator&) = delete;

  /// Schedules the whole session; the caller then runs the event loop.
  void start();

  bool finished() const { return finished_; }
  bool timed_out() const { return timed_out_; }
  platform::MeetingId meeting() const { return meeting_; }

 private:
  net::EventLoop& loop();
  std::unique_ptr<client::ClientController> make_controller(client::VcaClient& client);
  void on_meeting_created(platform::MeetingId id);
  void on_participant_joined(std::size_t index);
  void begin_media_phase();
  void on_join_timeout();

  Plan plan_;
  std::unique_ptr<client::ClientController> host_controller_;
  std::vector<std::unique_ptr<client::ClientController>> controllers_;
  platform::MeetingId meeting_ = 0;
  std::vector<bool> joined_;
  std::size_t joined_count_ = 0;
  std::size_t controllers_made_ = 0;
  bool media_started_ = false;
  bool finished_ = false;
  bool timed_out_ = false;
  net::EventId timeout_event_ = 0;
  bool timeout_scheduled_ = false;
};

}  // namespace vc::testbed
