// Coordinated session orchestration (Section 3.1 "coordinated client
// deployments"): brings a meeting up across a host and participants via
// their scripted controllers, fires the media/measurement phase once
// everyone is in, and tears the session down after the configured duration.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "client/controller.h"
#include "client/vca_client.h"

namespace vc::testbed {

class SessionOrchestrator {
 public:
  struct Plan {
    client::VcaClient* host = nullptr;
    std::vector<client::VcaClient*> participants;
    /// Gap between consecutive participant join scripts.
    SimDuration join_stagger = millis(400);
    /// Media/measurement phase length once everyone has joined.
    SimDuration media_duration = seconds(30);
    /// Fired when the roster is complete (start feeders/recorders here).
    std::function<void()> on_all_joined;
    /// Fired after everyone has left.
    std::function<void()> on_done;
  };

  explicit SessionOrchestrator(Plan plan);
  SessionOrchestrator(const SessionOrchestrator&) = delete;
  SessionOrchestrator& operator=(const SessionOrchestrator&) = delete;

  /// Schedules the whole session; the caller then runs the event loop.
  void start();

  bool finished() const { return finished_; }
  platform::MeetingId meeting() const { return meeting_; }

 private:
  void on_meeting_created(platform::MeetingId id);
  void on_participant_joined();
  void begin_media_phase();

  Plan plan_;
  std::unique_ptr<client::ClientController> host_controller_;
  std::vector<std::unique_ptr<client::ClientController>> controllers_;
  platform::MeetingId meeting_ = 0;
  std::size_t joined_ = 0;
  bool finished_ = false;
};

}  // namespace vc::testbed
