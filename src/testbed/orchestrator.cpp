#include "testbed/orchestrator.h"

#include <stdexcept>

namespace vc::testbed {

SessionOrchestrator::SessionOrchestrator(Plan plan) : plan_(std::move(plan)) {
  if (plan_.host == nullptr) throw std::invalid_argument{"session needs a host client"};
  joined_.assign(plan_.participants.size(), false);
}

net::EventLoop& SessionOrchestrator::loop() { return plan_.host->host().network().loop(); }

std::unique_ptr<client::ClientController> SessionOrchestrator::make_controller(
    client::VcaClient& client) {
  auto controller = plan_.script
                        ? std::make_unique<client::ClientController>(client, *plan_.script)
                        : std::make_unique<client::ClientController>(client);
  controller->set_metrics(plan_.metrics);
  controller->set_tracer(plan_.tracer);
  if (plan_.reconnect) {
    // Creation order (host, then participants in index order) is fixed, so
    // the derived jitter seed names the same controller in every run.
    controller->enable_reconnect(
        *plan_.reconnect,
        plan_.reconnect_seed + 0x9E3779B97F4A7C15ULL * (controllers_made_ + 1));
  }
  ++controllers_made_;
  return controller;
}

void SessionOrchestrator::start() {
  host_controller_ = make_controller(*plan_.host);
  if (plan_.join_timeout > SimDuration::zero()) {
    timeout_scheduled_ = true;
    timeout_event_ = loop().schedule_after(plan_.join_timeout, [this] { on_join_timeout(); });
  }
  host_controller_->start_host([this](platform::MeetingId id) { on_meeting_created(id); });
}

void SessionOrchestrator::on_meeting_created(platform::MeetingId id) {
  meeting_ = id;
  if (plan_.participants.empty()) {
    begin_media_phase();
    return;
  }
  SimDuration delay = SimDuration::zero();
  for (std::size_t i = 0; i < plan_.participants.size(); ++i) {
    auto controller = make_controller(*plan_.participants[i]);
    client::ClientController* ctl = controller.get();
    controllers_.push_back(std::move(controller));
    loop().schedule_after(delay, [this, ctl, i] {
      if (timed_out_) return;
      ctl->start_join(meeting_, [this, i] { on_participant_joined(i); });
    });
    delay = delay + plan_.join_stagger;
  }
}

void SessionOrchestrator::on_participant_joined(std::size_t index) {
  if (timed_out_ || joined_[index]) return;
  joined_[index] = true;
  ++joined_count_;
  if (joined_count_ == plan_.participants.size()) begin_media_phase();
}

void SessionOrchestrator::begin_media_phase() {
  if (timeout_scheduled_) {
    loop().cancel(timeout_event_);
    timeout_scheduled_ = false;
  }
  media_started_ = true;
  if (plan_.on_all_joined) plan_.on_all_joined();
  loop().schedule_after(plan_.media_duration, [this] {
    for (auto* p : plan_.participants) p->leave();
    plan_.host->leave();
    finished_ = true;
    if (plan_.metrics) plan_.metrics->counter("session.completed").inc();
    if (plan_.on_done) plan_.on_done(SessionOutcome{});
  });
}

void SessionOrchestrator::on_join_timeout() {
  if (media_started_ || finished_) return;
  timeout_scheduled_ = false;
  timed_out_ = true;
  finished_ = true;

  SessionOutcome outcome;
  outcome.ok = false;
  for (std::size_t i = 0; i < joined_.size(); ++i) {
    if (!joined_[i]) outcome.missing_participants.push_back(i);
  }

  // Stop the scripted workflows that are still mid-flight, then take every
  // client that did make it (including the host) out of the meeting so the
  // event loop can drain.
  host_controller_->abort();
  for (auto& ctl : controllers_) ctl->abort();
  for (auto* p : plan_.participants) p->leave();
  plan_.host->leave();

  if (plan_.metrics) plan_.metrics->counter("session.join_timeouts").inc();
  if (plan_.on_done) plan_.on_done(outcome);
}

}  // namespace vc::testbed
