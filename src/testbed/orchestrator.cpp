#include "testbed/orchestrator.h"

#include <stdexcept>

namespace vc::testbed {

SessionOrchestrator::SessionOrchestrator(Plan plan) : plan_(std::move(plan)) {
  if (plan_.host == nullptr) throw std::invalid_argument{"session needs a host client"};
}

void SessionOrchestrator::start() {
  host_controller_ = std::make_unique<client::ClientController>(*plan_.host);
  host_controller_->start_host([this](platform::MeetingId id) { on_meeting_created(id); });
}

void SessionOrchestrator::on_meeting_created(platform::MeetingId id) {
  meeting_ = id;
  if (plan_.participants.empty()) {
    begin_media_phase();
    return;
  }
  auto& loop = plan_.host->host().network().loop();
  SimDuration delay = SimDuration::zero();
  for (auto* participant : plan_.participants) {
    auto controller = std::make_unique<client::ClientController>(*participant);
    client::ClientController* ctl = controller.get();
    controllers_.push_back(std::move(controller));
    loop.schedule_after(delay, [this, ctl] {
      ctl->start_join(meeting_, [this] { on_participant_joined(); });
    });
    delay = delay + plan_.join_stagger;
  }
}

void SessionOrchestrator::on_participant_joined() {
  ++joined_;
  if (joined_ == plan_.participants.size()) begin_media_phase();
}

void SessionOrchestrator::begin_media_phase() {
  if (plan_.on_all_joined) plan_.on_all_joined();
  auto& loop = plan_.host->host().network().loop();
  loop.schedule_after(plan_.media_duration, [this] {
    for (auto* p : plan_.participants) p->leave();
    plan_.host->leave();
    finished_ = true;
    if (plan_.on_done) plan_.on_done();
  });
}

}  // namespace vc::testbed
