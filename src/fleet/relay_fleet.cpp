#include "fleet/relay_fleet.h"

#include <algorithm>
#include <stdexcept>

#include "common/geo.h"

namespace vc::fleet {

PlacementPolicy parse_policy(const std::string& name) {
  if (name == "rr" || name == "round-robin") return PlacementPolicy::kRoundRobin;
  if (name == "least" || name == "least-loaded") return PlacementPolicy::kLeastLoaded;
  if (name == "locality") return PlacementPolicy::kLocality;
  throw std::invalid_argument{"unknown placement policy: " + name};
}

const char* policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "rr";
    case PlacementPolicy::kLeastLoaded: return "least";
    case PlacementPolicy::kLocality: return "locality";
  }
  return "?";
}

RelayFleet::RelayFleet(net::Network& network, platform::BasePlatform& platform, Config config)
    : network_(network), platform_(platform), config_(config) {
  if (config_.size < 1) throw std::invalid_argument{"fleet size must be >= 1"};
  const auto& sites = platform::platform_sites(platform_.traits().id);
  slots_.resize(static_cast<std::size_t>(config_.size));
  for (int i = 0; i < config_.size; ++i) {
    // Slots cycle through the platform's modeled sites: a fleet larger than
    // the footprint co-locates extra slots (zero-distance trunks between
    // them still pay the configured propagation floor).
    slots_[static_cast<std::size_t>(i)].site = &sites[static_cast<std::size_t>(i) % sites.size()];
  }
  platform_.set_placer(this);
}

RelayFleet::~RelayFleet() {
  trunks_.clear();  // deregister trunk egress while the relays are alive
  platform_.set_placer(nullptr);
}

platform::RelayServer* RelayFleet::relay_of_slot(int slot) const {
  return slots_[static_cast<std::size_t>(slot)].relay;
}

Trunk* RelayFleet::trunk(int from_slot, int to_slot) const {
  auto it = trunks_.find({from_slot, to_slot});
  return it == trunks_.end() ? nullptr : it->second.get();
}

platform::RelayServer* RelayFleet::ensure_relay(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.relay == nullptr) s.relay = platform_.allocator().provision_relay(*s.site);
  return s.relay;
}

bool RelayFleet::slot_alive(int slot) const {
  const Slot& s = slots_[static_cast<std::size_t>(slot)];
  // An unprovisioned slot is spare capacity: it can be stood up on demand.
  return s.relay == nullptr || !s.relay->crashed();
}

int RelayFleet::pick_slot(const std::vector<int>& taken, const GeoPoint& member_location) {
  auto usable = [&](int i) {
    return slot_alive(i) && std::find(taken.begin(), taken.end(), i) == taken.end();
  };
  switch (config_.policy) {
    case PlacementPolicy::kRoundRobin: {
      for (int step = 0; step < config_.size; ++step) {
        const int i = (rr_cursor_ + step) % config_.size;
        if (!usable(i)) continue;
        rr_cursor_ = (i + 1) % config_.size;
        return i;
      }
      return -1;
    }
    case PlacementPolicy::kLeastLoaded: {
      int best = -1;
      for (int i = 0; i < config_.size; ++i) {
        if (!usable(i)) continue;
        if (best < 0 || slots_[static_cast<std::size_t>(i)].participants <
                            slots_[static_cast<std::size_t>(best)].participants) {
          best = i;  // strict < keeps the lowest index on ties
        }
      }
      return best;
    }
    case PlacementPolicy::kLocality: {
      int best = -1;
      double best_km = 0.0;
      for (int i = 0; i < config_.size; ++i) {
        if (!usable(i)) continue;
        const double km =
            great_circle_km(member_location, slots_[static_cast<std::size_t>(i)].site->location);
        if (best < 0 || km < best_km) {  // strict <: lowest index on ties
          best = i;
          best_km = km;
        }
      }
      return best;
    }
  }
  return -1;
}

void RelayFleet::ensure_trunk_pair(int a, int b) {
  const double km = great_circle_km(slots_[static_cast<std::size_t>(a)].site->location,
                                    slots_[static_cast<std::size_t>(b)].site->location);
  SimDuration prop = millis_f(km * config_.trunk_us_per_km / 1000.0);
  if (prop < config_.trunk_min_propagation) prop = config_.trunk_min_propagation;
  for (const auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    if (trunks_.count({from, to}) != 0) continue;
    Trunk::Config tc;
    tc.rate = config_.trunk_rate;
    tc.burst_bytes = config_.trunk_burst_bytes;
    tc.queue_limit_packets = config_.trunk_queue_limit_packets;
    tc.propagation = prop;
    auto trunk = std::make_unique<Trunk>(network_, *ensure_relay(from), *ensure_relay(to), tc);
    if (metrics_ != nullptr) {
      trunk->attach_metrics(*metrics_, metrics_prefix_ + ".trunk" + std::to_string(from) + "_" +
                                           std::to_string(to));
      trunk->set_origin_bytes_counter(slots_[static_cast<std::size_t>(from)].c_trunk_bytes);
    }
    trunk->set_tracer(tracer_);
    trunks_.emplace(std::pair{from, to}, std::move(trunk));
  }
}

void RelayFleet::open_shard(platform::MeetingId meeting, Homing& h, int slot) {
  platform::RelayServer* fresh = ensure_relay(slot);
  for (const int s : h.shards) {
    if (!slot_alive(s) || slots_[static_cast<std::size_t>(s)].relay == nullptr) continue;
    platform::RelayServer* existing = slots_[static_cast<std::size_t>(s)].relay;
    existing->link_peer(meeting, fresh);
    fresh->link_peer(meeting, existing);
    ensure_trunk_pair(s, slot);
  }
  h.shards.push_back(slot);
  h.shard_members.emplace(slot, 0);
  ++slots_[static_cast<std::size_t>(slot)].meetings;
  update_gauges(slot);
}

platform::RelayServer* RelayFleet::home_for(platform::MeetingId meeting,
                                            platform::ParticipantId member,
                                            const GeoPoint& member_location) {
  Homing& h = homings_[meeting];
  // Idempotent for an already-homed member: assign_routes re-runs over every
  // unrouted member (e.g. when someone joins during an outage), and a member
  // whose slot is down must wait for the reconnect/rehome path, not be
  // silently double-counted onto a new slot.
  if (auto it = h.member_slot.find(member); it != h.member_slot.end()) {
    return slot_alive(it->second) ? ensure_relay(it->second) : nullptr;
  }
  int slot;
  if (h.shards.empty()) {
    slot = pick_slot({}, member_location);
    if (slot < 0) return nullptr;  // whole fleet down
    open_shard(meeting, h, slot);
  } else {
    slot = h.shards.back();  // join-order fill of the newest shard
    const bool full = config_.overflow_shard_size > 0 &&
                      h.shard_members[slot] >= config_.overflow_shard_size;
    if (full || !slot_alive(slot)) {
      const int next = pick_slot(h.shards, member_location);
      if (next >= 0) {
        open_shard(meeting, h, next);
        slot = next;
      } else {
        // Every slot already hosts a shard (or is down): overflow into the
        // least-populated surviving shard — the soft limit yields to
        // capacity.
        slot = -1;
        for (const int s : h.shards) {
          if (!slot_alive(s)) continue;
          if (slot < 0 || h.shard_members[s] < h.shard_members[slot]) slot = s;
        }
        if (slot < 0) return nullptr;
      }
    }
  }
  h.member_slot[member] = slot;
  ++h.shard_members[slot];
  ++slots_[static_cast<std::size_t>(slot)].participants;
  update_gauges(slot);
  return ensure_relay(slot);
}

void RelayFleet::on_member_left(platform::MeetingId meeting, platform::ParticipantId member) {
  auto hit = homings_.find(meeting);
  if (hit == homings_.end()) return;
  Homing& h = hit->second;
  auto mit = h.member_slot.find(member);
  if (mit == h.member_slot.end()) return;
  const int slot = mit->second;
  h.member_slot.erase(mit);
  --h.shard_members[slot];
  --slots_[static_cast<std::size_t>(slot)].participants;
  update_gauges(slot);
}

void RelayFleet::on_meeting_ended(platform::MeetingId meeting) {
  auto hit = homings_.find(meeting);
  if (hit == homings_.end()) return;
  Homing& h = hit->second;
  for (const int slot : h.shards) {
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    --s.meetings;
    s.participants -= h.shard_members[slot];  // members that never left()
    update_gauges(slot);
  }
  homings_.erase(hit);
}

void RelayFleet::on_relay_crashed(platform::RelayServer* relay) {
  int dead = -1;
  for (int i = 0; i < config_.size; ++i) {
    if (slots_[static_cast<std::size_t>(i)].relay == relay) dead = i;
  }
  if (dead < 0) return;  // not a fleet relay
  // Re-home every affected meeting's members in meeting-id order (then
  // member-id order within a meeting) — the deterministic failover sweep.
  for (auto& [meeting, h] : homings_) {
    if (std::find(h.shards.begin(), h.shards.end(), dead) == h.shards.end()) continue;
    for (auto& [member, slot] : h.member_slot) {
      if (slot != dead) continue;
      // Locality failover measures from the dead site: the nearest
      // surviving datacenter inherits its neighborhood.
      const int target =
          pick_slot({dead}, slots_[static_cast<std::size_t>(dead)].site->location);
      if (target < 0) continue;  // no survivor: wait for restart (fleet of 1)
      if (std::find(h.shards.begin(), h.shards.end(), target) == h.shards.end()) {
        open_shard(meeting, h, target);
      }
      slot = target;
      --h.shard_members[dead];
      ++h.shard_members[target];
      --slots_[static_cast<std::size_t>(dead)].participants;
      ++slots_[static_cast<std::size_t>(target)].participants;
      update_gauges(target);
    }
    // Retire the dead shard once nothing is homed on it any more; survivors
    // drop their peer links to it (its own session state died in crash()).
    if (h.shard_members[dead] == 0) {
      std::erase(h.shards, dead);
      h.shard_members.erase(dead);
      --slots_[static_cast<std::size_t>(dead)].meetings;
      for (const int s : h.shards) {
        platform::RelayServer* survivor = slots_[static_cast<std::size_t>(s)].relay;
        if (survivor != nullptr) survivor->unlink_peer(meeting, relay);
      }
    }
  }
  update_gauges(dead);
}

platform::RelayServer* RelayFleet::rehome(platform::MeetingId meeting,
                                          platform::ParticipantId member) {
  auto hit = homings_.find(meeting);
  if (hit == homings_.end()) return nullptr;
  auto mit = hit->second.member_slot.find(member);
  if (mit == hit->second.member_slot.end()) return nullptr;
  if (!slot_alive(mit->second)) return nullptr;  // target down too: back off
  return ensure_relay(mit->second);
}

void RelayFleet::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  metrics_ = &registry;
  metrics_prefix_ = prefix;
  for (int i = 0; i < config_.size; ++i) {
    Slot& s = slots_[static_cast<std::size_t>(i)];
    const std::string base = prefix + ".relay" + std::to_string(i);
    s.g_meetings = &registry.gauge(base + ".meetings");
    s.g_participants = &registry.gauge(base + ".participants");
    s.c_trunk_bytes = &registry.counter(base + ".trunk_bytes");
    update_gauges(i);
  }
  for (auto& [key, trunk] : trunks_) {
    trunk->attach_metrics(registry, prefix + ".trunk" + std::to_string(key.first) + "_" +
                                       std::to_string(key.second));
    trunk->set_origin_bytes_counter(slots_[static_cast<std::size_t>(key.first)].c_trunk_bytes);
  }
}

void RelayFleet::update_gauges(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.g_meetings != nullptr) s.g_meetings->set(static_cast<double>(s.meetings));
  if (s.g_participants != nullptr) s.g_participants->set(static_cast<double>(s.participants));
}

}  // namespace vc::fleet
