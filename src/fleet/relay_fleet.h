// The relay federation fleet: a fixed pool of relays, a deterministic
// meeting load balancer, overflow sharding for huge meetings, and
// spare-capacity failover — the provider-side half the paper could only
// observe from outside (Section 4.2's geo-distributed relay steering).
//
// A RelayFleet implements platform::MeetingPlacer, replacing the measured
// per-platform steering policies with an explicit balancer over `size`
// relay slots. Slots are provisioned lazily through the platform's
// RelayAllocator in first-touch order — under the rr and least-loaded
// policies that is ascending slot order, so the fault subsystem addresses
// fleet slot i as allocator relay_at(i) — and cycle through the platform's
// modeled sites, giving multi-slot fleets a real geographic spread for the
// locality policy and for trunk propagation delays.
//
//   * Placement — one of three deterministic, RNG-free policies picks the
//     slot when a meeting first needs a home: round-robin (rotating cursor),
//     least-loaded (fewest homed participants, lowest slot index breaking
//     ties), locality (nearest site to the joining member, lowest index
//     breaking ties).
//   * Overflow sharding — when a meeting's current shard reaches
//     overflow_shard_size members, the balancer opens a new shard on
//     another slot and trunks it (both directions) to every existing shard,
//     so one huge meeting's fan-out load spreads across the fleet while
//     media still reaches every member through the relay mesh.
//   * Failover — on a relay crash the fleet re-homes that slot's members
//     onto surviving slots at crash time (policy-picked, load transferred
//     eagerly); reconnecting clients then land on the precomputed target
//     via MeetingPlacer::rehome. With no survivor (fleet of 1) members keep
//     their slot and back off until the relay restarts — the PR 5 behavior.
//
// Determinism: placement, overflow and failover consult only fleet-internal
// state iterated in deterministic (slot-index / meeting-id) order and draw
// no RNG, so same seed ⇒ byte-identical reports at any thread count × shard
// count × fleet size.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/tracer.h"
#include "fleet/trunk.h"
#include "platform/base_platform.h"

namespace vc::fleet {

enum class PlacementPolicy { kRoundRobin, kLeastLoaded, kLocality };

/// Parses "rr" / "least" / "locality" (benchmark flag spelling).
PlacementPolicy parse_policy(const std::string& name);
const char* policy_name(PlacementPolicy policy);

class RelayFleet : public platform::MeetingPlacer {
 public:
  struct Config {
    int size = 1;
    PlacementPolicy policy = PlacementPolicy::kRoundRobin;
    /// Members per meeting shard before the balancer opens an overflow
    /// shard on another slot; 0 disables sharding (unbounded shard).
    /// Failover may exceed the limit: re-homed members join surviving
    /// shards regardless of fullness (capacity beats the soft split).
    int overflow_shard_size = 0;
    /// Trunk provisioning shared by every inter-slot link.
    DataRate trunk_rate = DataRate::mbps(500);
    std::int64_t trunk_burst_bytes = 64'000;
    std::size_t trunk_queue_limit_packets = 4096;
    /// Propagation: ~5 us per great-circle km (fiber), floored at 1 ms.
    double trunk_us_per_km = 5.0;
    SimDuration trunk_min_propagation = millis(1);
  };

  /// Installs itself as `platform`'s placer; the destructor uninstalls.
  /// Construct before any meeting is created.
  RelayFleet(net::Network& network, platform::BasePlatform& platform, Config config);
  ~RelayFleet() override;

  // MeetingPlacer:
  platform::RelayServer* home_for(platform::MeetingId meeting, platform::ParticipantId member,
                                  const GeoPoint& member_location) override;
  void on_member_left(platform::MeetingId meeting, platform::ParticipantId member) override;
  void on_meeting_ended(platform::MeetingId meeting) override;
  void on_relay_crashed(platform::RelayServer* relay) override;
  platform::RelayServer* rehome(platform::MeetingId meeting,
                                platform::ParticipantId member) override;

  /// Per-slot load gauges `<prefix>.relay<i>.meetings` /
  /// `.relay<i>.participants` plus a `.relay<i>.trunk_bytes` counter
  /// (wire bytes this slot pushed onto trunks), registered for every slot up
  /// front so reports have stable columns at any load. Trunks created from
  /// now on report under `<prefix>.trunk<i>_<j>` (shaper counters +
  /// delivered_packets). Part of the determinism contract.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "fleet");

  /// Traces trunks created from now on (fleet.trunk spans + shaper records).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  int size() const { return config_.size; }
  /// Slot's relay, nullptr while never provisioned (no meeting touched it).
  platform::RelayServer* relay_of_slot(int slot) const;
  int slot_meetings(int slot) const { return slots_[static_cast<std::size_t>(slot)].meetings; }
  int slot_participants(int slot) const {
    return slots_[static_cast<std::size_t>(slot)].participants;
  }
  /// Directed trunk i→j, nullptr while the pair was never linked.
  Trunk* trunk(int from_slot, int to_slot) const;
  std::size_t trunk_count() const { return trunks_.size(); }

 private:
  struct Slot {
    platform::RelayServer* relay = nullptr;  // lazily provisioned
    const platform::Site* site = nullptr;
    int meetings = 0;      // shards homed here (one meeting can count once)
    int participants = 0;  // members homed here across all meetings
    MetricsRegistry::Gauge* g_meetings = nullptr;
    MetricsRegistry::Gauge* g_participants = nullptr;
    MetricsRegistry::Counter* c_trunk_bytes = nullptr;
  };
  /// Where one meeting lives on the fleet.
  struct Homing {
    /// Slots hosting a shard of this meeting, in open order; the newest
    /// shard is the one join-order assignment fills.
    std::vector<int> shards;
    /// member → slot. Updated eagerly on failover, so rehome() is a lookup.
    std::map<platform::ParticipantId, int> member_slot;
    /// slot → members currently homed there (parallel to member_slot).
    std::map<int, int> shard_members;
  };

  platform::RelayServer* ensure_relay(int slot);
  bool slot_alive(int slot) const;
  /// Policy pick among alive slots, excluding those already in `taken`
  /// (pass empty for a first shard). Returns -1 when nothing qualifies.
  int pick_slot(const std::vector<int>& taken, const GeoPoint& member_location);
  /// Opens a shard of `meeting` on `slot`: bumps load, links the new shard's
  /// relay to every existing shard (peer links both ways + trunk pair).
  void open_shard(platform::MeetingId meeting, Homing& h, int slot);
  void ensure_trunk_pair(int a, int b);
  void update_gauges(int slot);

  net::Network& network_;
  platform::BasePlatform& platform_;
  Config config_;
  std::vector<Slot> slots_;
  /// meeting-id ordered: crash failover iterates this deterministically.
  std::map<platform::MeetingId, Homing> homings_;
  /// Directed trunks, keyed (from_slot, to_slot); std::map for
  /// deterministic teardown and inspection order.
  std::map<std::pair<int, int>, std::unique_ptr<Trunk>> trunks_;
  int rr_cursor_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  std::string metrics_prefix_;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::fleet
