// A cascaded-relay trunk: the directed inter-relay link of a federated
// deployment.
//
// The paper's measured platforms each terminate a meeting on one relay (or,
// for Meet, a handful of front-ends meshed per meeting). A federation goes
// further: relays are peered by long-lived TRUNKS that aggregate every
// co-homed meeting's media onto one provisioned link, the way real SFU
// cascades ride leased backbone capacity between datacenters. A trunk
// therefore models exactly two things a per-meeting peer socket does not:
//   * capacity — a TokenBucketShaper bounds the aggregate rate, so a hot
//     fleet sees trunk queueing delay and tail drops like a saturated
//     backbone link;
//   * propagation — a fixed site-to-site delay derived from great-circle
//     distance, shared by every meeting on the link.
//
// Determinism: a trunk lives entirely on the event loop (shaper drain events
// + one delivery event per packet) and draws no randomness, so the trunked
// path is byte-identical at every thread and shard count. Packets enter at
// the origin relay's departure tick (RelayServer::set_trunk_egress fires
// after the departure batch is sealed, on the loop thread) and leave into
// RelayServer::ingest_trunk, which demuxes by the packet's meeting tag.
#pragma once

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/tracer.h"
#include "net/shaper.h"
#include "platform/relay.h"

namespace vc::fleet {

class Trunk {
 public:
  struct Config {
    /// Aggregate capacity of the link (all meetings share it).
    DataRate rate = DataRate::mbps(500);
    std::int64_t burst_bytes = 64'000;
    std::size_t queue_limit_packets = 4096;
    /// One-way propagation delay between the two relay sites.
    SimDuration propagation = millis(1);
  };

  struct Stats {
    std::int64_t delivered_packets = 0;
    std::int64_t delivered_bytes = 0;
  };

  /// Registers itself as `from`'s egress toward `to` (and deregisters in the
  /// destructor). Both relays are borrowed and must outlive the trunk.
  Trunk(net::Network& network, platform::RelayServer& from, platform::RelayServer& to,
        Config config);
  ~Trunk();
  Trunk(const Trunk&) = delete;
  Trunk& operator=(const Trunk&) = delete;

  /// Shaper forward/drop accounting under `<prefix>.forwarded_packets` etc.
  /// plus a `<prefix>.delivered_packets` counter (packets that cleared both
  /// the shaper and propagation into the far relay). Part of the determinism
  /// contract, like relay metrics.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix);

  /// Per-packet `fleet.trunk` spans (shaper-exit → far-relay ingest, value =
  /// wire bytes) plus the shaper's own backlog/queue records.
  void set_tracer(Tracer* tracer);

  /// Counter credited with every submitted packet's wire bytes (borrowed;
  /// the fleet points this at the origin slot's `.trunk_bytes` counter).
  void set_origin_bytes_counter(MetricsRegistry::Counter* counter) {
    origin_bytes_ = counter;
  }

  const Stats& stats() const { return stats_; }
  const net::TokenBucketShaper::Stats& shaper_stats() const { return shaper_.stats(); }

 private:
  void send(net::Packet pkt);

  net::Network& network_;
  platform::RelayServer& from_;
  platform::RelayServer& to_;
  Config config_;
  net::TokenBucketShaper shaper_;
  Stats stats_;
  MetricsRegistry::Counter* origin_bytes_ = nullptr;
  MetricsRegistry::Counter* m_delivered_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::fleet
