#include "fleet/trunk.h"

namespace vc::fleet {

Trunk::Trunk(net::Network& network, platform::RelayServer& from, platform::RelayServer& to,
             Config config)
    : network_(network),
      from_(from),
      to_(to),
      config_(config),
      shaper_(network.loop(), config.rate, config.burst_bytes, config.queue_limit_packets) {
  from_.set_trunk_egress(to_.endpoint(), [this](net::Packet pkt) { send(std::move(pkt)); });
}

Trunk::~Trunk() { from_.set_trunk_egress(to_.endpoint(), nullptr); }

void Trunk::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  shaper_.attach_metrics(registry, prefix);
  m_delivered_ = &registry.counter(prefix + ".delivered_packets");
}

void Trunk::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  shaper_.set_tracer(tracer);
}

void Trunk::send(net::Packet pkt) {
  // The trunk is the link between the two relay processes, so the copy's
  // source becomes the origin relay's media endpoint — what the far side
  // would see on the wire. (Demux at ingest is by pkt.meeting, not src: one
  // trunk aggregates many meetings.)
  pkt.src = from_.endpoint();
  if (origin_bytes_ != nullptr) origin_bytes_->add(pkt.wire_len());
  shaper_.submit(std::move(pkt), [this](net::Packet cleared) {
    const SimTime exit = network_.loop().now();
    const SimTime arrival = exit + config_.propagation;
    if (tracer_ != nullptr) {
      tracer_->span("fleet.trunk", exit, arrival, static_cast<double>(cleared.wire_len()));
    }
    network_.loop().schedule_at(arrival, [this, p = std::move(cleared)]() mutable {
      ++stats_.delivered_packets;
      stats_.delivered_bytes += p.wire_len();
      if (m_delivered_ != nullptr) m_delivered_->inc();
      to_.ingest_trunk(p);
    });
  });
}

}  // namespace vc::fleet
