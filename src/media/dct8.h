// Vectorized 8×8 DCT-II / IDCT kernels with a bit-identical determinism
// contract.
//
// Every pass of both separable transforms reduces to one primitive: eight
// output lanes l, out[l] = Σ_k s[k] · t[k·8 + l], accumulated in k order.
// The SIMD backends compute the eight lanes in parallel but each lane still
// performs exactly the scalar reference's operation sequence — acc = acc +
// s·t for k = 0…7, no FMA contraction, no reassociation — so the result is
// bit-identical to the retained scalar triple loop by construction, on every
// backend. tests/media/test_dct8.cpp enforces this exhaustively; the golden
// transcripts and 1-vs-8-thread report identities therefore never move when
// the backend changes.
//
// Backend selection is a process-wide dispatch set once at startup to the
// best ISA the CPU supports (AVX → SSE2 → portable lane-parallel C). Benches
// and tests may override it with set_dct_backend() — single-threaded setup
// only, before sessions spawn.
#pragma once

namespace vc::media {

enum class DctBackend {
  kScalar = 0,   // the original triple loop, retained as the reference
  kPortable,     // lane-parallel C (auto-vectorizable), any architecture
  kSse2,         // x86-64 baseline, 2 lanes per vector
  kAvx,          // runtime-detected, 4 lanes per vector
};

/// The backend the dct2d_8x8/idct2d_8x8 dispatch currently points at.
DctBackend active_dct_backend();
const char* dct_backend_name(DctBackend backend);
/// Whether this build + CPU can run `backend`.
bool dct_backend_available(DctBackend backend);
/// Points the dispatch at `backend`; returns false (and leaves the dispatch
/// untouched) when unavailable. Not thread-safe against concurrent encodes.
bool set_dct_backend(DctBackend backend);
/// Best available backend for this CPU (what startup selects).
DctBackend best_dct_backend();

/// F = C·B·Cᵀ and B = Cᵀ·F·C over row-major 8×8 blocks of doubles, through
/// the active backend.
void dct2d_8x8(const double* in, double* out);
void idct2d_8x8(const double* in, double* out);

/// The retained scalar reference (the exact pre-vectorization loops), always
/// available regardless of the active backend — the equality oracle.
void dct2d_8x8_scalar(const double* in, double* out);
void idct2d_8x8_scalar(const double* in, double* out);

}  // namespace vc::media
