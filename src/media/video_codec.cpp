#include "media/video_codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vc::media {
namespace {

// Precomputed DCT-II basis: kDct[u][x] = a(u) * cos((2x+1) u pi / 16).
struct DctTables {
  std::array<std::array<double, kBlock>, kBlock> fwd;
  DctTables() {
    for (int u = 0; u < kBlock; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
      for (int x = 0; x < kBlock; ++x) {
        fwd[u][x] = a * std::cos((2 * x + 1) * u * std::numbers::pi / (2.0 * kBlock));
      }
    }
  }
};
const DctTables kDct;

using Block = std::array<double, kBlock * kBlock>;

// F = C * B * C^T (separable: rows then columns).
void dct2d(const Block& in, Block& out) {
  Block tmp;
  for (int y = 0; y < kBlock; ++y) {
    for (int u = 0; u < kBlock; ++u) {
      double acc = 0.0;
      for (int x = 0; x < kBlock; ++x) acc += kDct.fwd[u][x] * in[y * kBlock + x];
      tmp[y * kBlock + u] = acc;
    }
  }
  for (int u = 0; u < kBlock; ++u) {
    for (int v = 0; v < kBlock; ++v) {
      double acc = 0.0;
      for (int y = 0; y < kBlock; ++y) acc += kDct.fwd[v][y] * tmp[y * kBlock + u];
      out[v * kBlock + u] = acc;
    }
  }
}

// B = C^T * F * C.
void idct2d(const Block& in, Block& out) {
  Block tmp;
  for (int v = 0; v < kBlock; ++v) {
    for (int x = 0; x < kBlock; ++x) {
      double acc = 0.0;
      for (int u = 0; u < kBlock; ++u) acc += kDct.fwd[u][x] * in[v * kBlock + u];
      tmp[v * kBlock + x] = acc;
    }
  }
  for (int x = 0; x < kBlock; ++x) {
    for (int y = 0; y < kBlock; ++y) {
      double acc = 0.0;
      for (int v = 0; v < kBlock; ++v) acc += kDct.fwd[v][y] * tmp[v * kBlock + x];
      out[y * kBlock + x] = acc;
    }
  }
}

// Frequency-weighted quantization: higher frequencies get coarser steps,
// like JPEG/H.26x quantization matrices.
double quant_weight(int u, int v) { return 1.0 + 0.12 * (u + v); }

// Entropy estimate for one quantized coefficient (sign + magnitude prefix).
std::int64_t coeff_bits(std::int16_t q) {
  if (q == 0) return 0;
  const double mag = std::abs(static_cast<double>(q));
  return 2 + static_cast<std::int64_t>(2.0 * std::log2(1.0 + mag));
}

std::int64_t div_round_up(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

VideoEncoder::VideoEncoder(int width, int height, Config cfg)
    : width_(width), height_(height), cfg_(cfg), recon_(width, height, 0) {
  if (width % kBlock != 0 || height % kBlock != 0) {
    throw std::invalid_argument{"frame dimensions must be multiples of 8"};
  }
  if (cfg_.fps <= 0.0 || cfg_.keyframe_interval <= 0) throw std::invalid_argument{"bad encoder config"};
}

void VideoEncoder::set_target_bitrate(DataRate rate) { cfg_.target_bitrate = rate; }

VideoEncoder::EncodeResult VideoEncoder::encode_pass(const Frame& frame, bool keyframe,
                                                     double qstep, EncodedFrame* out,
                                                     Frame* recon) const {
  const int bx = width_ / kBlock;
  const int by = height_ / kBlock;
  EncodeResult res;
  if (out != nullptr) {
    out->coeffs.assign(static_cast<std::size_t>(bx) * by * kBlock * kBlock, 0);
    out->modes.assign(static_cast<std::size_t>(bx) * by, BlockMode::kIntra);
  }
  Block pixels, pred, residual, coeffs, deq, rec;
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      const int x0 = bxi * kBlock;
      const int y0 = byi * kBlock;
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          pixels[y * kBlock + x] = frame.at(x0 + x, y0 + y);
        }
      }
      // Mode decision by SAD against each predictor.
      double sad_intra = 0.0;
      double sad_inter = 0.0;
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const double px = pixels[y * kBlock + x];
          sad_intra += std::abs(px - 128.0);
          sad_inter += std::abs(px - static_cast<double>(recon_.at(x0 + x, y0 + y)));
        }
      }
      const bool inter = !keyframe && sad_inter <= sad_intra;
      ++res.total_blocks;
      // SKIP decision before transform: when the block barely differs from
      // the reference, copy it (real codecs' SKIP mode). Without this, the
      // encoder would spend bits forever chasing its own quantization noise
      // on static content — and a "blank" screen would never go quiet on
      // the wire, breaking the premise of the paper's lag measurement.
      constexpr double kSkipSad = 96.0;  // ~1.5 luma units/pixel
      if (inter && sad_inter < kSkipSad) {
        res.bits += 1;
        ++res.skip_blocks;
        if (out != nullptr) {
          out->modes[static_cast<std::size_t>(byi) * bx + bxi] = BlockMode::kInter;
        }
        if (recon != nullptr) {
          for (int y = 0; y < kBlock; ++y) {
            for (int x = 0; x < kBlock; ++x) {
              recon->set(x0 + x, y0 + y, recon_.at(x0 + x, y0 + y));
            }
          }
        }
        continue;
      }
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          pred[y * kBlock + x] = inter ? static_cast<double>(recon_.at(x0 + x, y0 + y)) : 128.0;
          residual[y * kBlock + x] = pixels[y * kBlock + x] - pred[y * kBlock + x];
        }
      }
      dct2d(residual, coeffs);
      std::int64_t block_bits = 10;  // mode + qdelta + EOB overhead
      bool all_zero = true;
      for (int v = 0; v < kBlock; ++v) {
        for (int u = 0; u < kBlock; ++u) {
          const double step = qstep * quant_weight(u, v);
          const double c = coeffs[v * kBlock + u] / step;
          const auto q = static_cast<std::int16_t>(std::clamp(
              std::lround(c), static_cast<long>(INT16_MIN), static_cast<long>(INT16_MAX)));
          block_bits += coeff_bits(q);
          if (q != 0) all_zero = false;
          deq[v * kBlock + u] = static_cast<double>(q) * step;
          if (out != nullptr) {
            out->coeffs[(static_cast<std::size_t>(byi) * bx + bxi) * kBlock * kBlock + v * kBlock + u] = q;
          }
        }
      }
      // Skip-block coding: an inter block with an all-zero residual costs a
      // fraction of a bit (run-length coded), like real codecs' SKIP mode —
      // this is what makes a static scene nearly free (Finding 3) and keeps
      // the blank frames of the lag feed under the big-packet threshold.
      if (inter && all_zero) {
        block_bits = 1;
        ++res.skip_blocks;
      }
      res.bits += block_bits;
      if (out != nullptr) {
        out->modes[static_cast<std::size_t>(byi) * bx + bxi] =
            inter ? BlockMode::kInter : BlockMode::kIntra;
      }
      if (recon != nullptr) {
        idct2d(deq, rec);
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            const double v = pred[y * kBlock + x] + rec[y * kBlock + x];
            recon->set(x0 + x, y0 + y, static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0)));
          }
        }
      }
    }
  }
  return res;
}

std::shared_ptr<EncodedFrame> VideoEncoder::encode(const Frame& frame) {
  if (frame.width() != width_ || frame.height() != height_) {
    throw std::invalid_argument{"frame size does not match encoder"};
  }
  const bool keyframe = next_seq_ % cfg_.keyframe_interval == 0;
  const double per_frame_budget =
      static_cast<double>(cfg_.target_bitrate.bits_per_second()) / cfg_.fps;
  // Keyframes may spend a few frames' budget; the virtual buffer charges the
  // overdraft to subsequent frames.
  const double frame_target = per_frame_budget * (keyframe ? 3.0 : 1.0);

  // Trial pass at the current quantizer, then one corrective pass.
  const EncodeResult trial = encode_pass(frame, keyframe, qstep_, nullptr, nullptr);
  double q = qstep_;
  if (trial.bits > 0 && frame_target > 0) {
    const double ratio = static_cast<double>(trial.bits) / frame_target;
    q = std::clamp(qstep_ * std::pow(ratio, 0.8), cfg_.min_qstep, cfg_.max_qstep);
  }

  auto out = std::make_shared<EncodedFrame>();
  out->width = width_;
  out->height = height_;
  out->keyframe = keyframe;
  out->qstep = q;
  out->sequence = next_seq_++;
  Frame recon{width_, height_};
  const EncodeResult real = encode_pass(frame, keyframe, q, out.get(), &recon);
  out->bytes = std::max<std::int64_t>(div_round_up(real.bits, 8), 64);
  out->wire_bytes = out->bytes;
  out->skip_blocks = real.skip_blocks;
  out->total_blocks = real.total_blocks;
  recon_ = std::move(recon);

  // Buffer feedback nudges the starting quantizer of the next frame.
  buffer_bits_ += static_cast<double>(real.bits) - per_frame_budget;
  buffer_bits_ = std::max(buffer_bits_, 0.0);
  const double pressure = buffer_bits_ / (per_frame_budget * 4.0 + 1.0);
  qstep_ = std::clamp(q * (1.0 + 0.2 * pressure), cfg_.min_qstep, cfg_.max_qstep);
  return out;
}

VideoDecoder::VideoDecoder(int width, int height)
    : width_(width), height_(height), current_(width, height, 0) {
  if (width % kBlock != 0 || height % kBlock != 0) {
    throw std::invalid_argument{"frame dimensions must be multiples of 8"};
  }
}

const Frame& VideoDecoder::decode(const EncodedFrame& frame) {
  if (frame.width != width_ || frame.height != height_) {
    throw std::invalid_argument{"encoded frame size does not match decoder"};
  }
  const int bx = width_ / kBlock;
  const int by = height_ / kBlock;
  Frame next{width_, height_};
  Block deq, rec;
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      const int x0 = bxi * kBlock;
      const int y0 = byi * kBlock;
      const bool inter = frame.modes[static_cast<std::size_t>(byi) * bx + bxi] == BlockMode::kInter;
      for (int v = 0; v < kBlock; ++v) {
        for (int u = 0; u < kBlock; ++u) {
          const double step = frame.qstep * quant_weight(u, v);
          deq[v * kBlock + u] =
              static_cast<double>(
                  frame.coeffs[(static_cast<std::size_t>(byi) * bx + bxi) * kBlock * kBlock +
                               v * kBlock + u]) *
              step;
        }
      }
      idct2d(deq, rec);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const double pred = inter ? static_cast<double>(current_.at(x0 + x, y0 + y)) : 128.0;
          next.set(x0 + x, y0 + y,
                   static_cast<std::uint8_t>(std::clamp(pred + rec[y * kBlock + x] + 0.5, 0.0, 255.0)));
        }
      }
    }
  }
  current_ = std::move(next);
  ++frames_decoded_;
  return current_;
}

}  // namespace vc::media
