#include "media/video_codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "media/dct8.h"

namespace vc::media {
namespace {

using Block = std::array<double, kBlock * kBlock>;

// Table-driven quantization: kQuant.weight is the frequency-weighted step
// multiplier (1.0 + 0.12·(u+v), like JPEG/H.26x matrices) and kQuant.bits
// the entropy estimate for one quantized coefficient (sign + magnitude
// prefix). Both tables are generated from the exact expressions the hot
// loop used to evaluate per coefficient — 2 + ⌊2·log2(1+|q|)⌋ cost a log2
// per coefficient per pass — so every encoded bit count is unchanged.
struct QuantTables {
  double weight[kBlock * kBlock];
  std::uint8_t bits[32769];  // index |q|, q clamped to int16 so |q| <= 32768
  QuantTables() {
    for (int v = 0; v < kBlock; ++v) {
      for (int u = 0; u < kBlock; ++u) weight[v * kBlock + u] = 1.0 + 0.12 * (u + v);
    }
    bits[0] = 0;
    for (int m = 1; m <= 32768; ++m) {
      const double mag = static_cast<double>(m);
      bits[m] = static_cast<std::uint8_t>(2 + static_cast<std::int64_t>(2.0 * std::log2(1.0 + mag)));
    }
  }
};
const QuantTables kQuant;

// SKIP threshold: ~1.5 luma units/pixel. SAD sums of 8-bit pixels are exact
// small integers, so integer accumulation reproduces the historical double
// accumulation bit-for-bit in any order.
constexpr std::int32_t kSkipSad = 96;

std::int64_t div_round_up(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

}  // namespace

VideoEncoder::VideoEncoder(int width, int height, Config cfg)
    : width_(width), height_(height), cfg_(cfg), recon_(width, height, 0),
      recon_scratch_(width, height, 0) {
  if (width % kBlock != 0 || height % kBlock != 0) {
    throw std::invalid_argument{"frame dimensions must be multiples of 8"};
  }
  if (cfg_.fps <= 0.0 || cfg_.keyframe_interval <= 0) throw std::invalid_argument{"bad encoder config"};
}

void VideoEncoder::set_target_bitrate(DataRate rate) { cfg_.target_bitrate = rate; }

VideoEncoder::EncodeResult VideoEncoder::encode_pass(const Frame& frame, bool keyframe,
                                                     double qstep, EncodedFrame* out,
                                                     Frame* recon) const {
  const int bx = width_ / kBlock;
  const int by = height_ / kBlock;
  EncodeResult res;
  if (out != nullptr) {
    // assign() within retained capacity: allocation-free after first use.
    out->coeffs.assign(static_cast<std::size_t>(bx) * by * kBlock * kBlock, 0);
    out->modes.assign(static_cast<std::size_t>(bx) * by, BlockMode::kIntra);
  }
  alignas(32) Block pred, residual, coeffs, deq, rec;
  const std::uint8_t* fdata = frame.data();
  const std::uint8_t* rdata = recon_.data();
  const int stride = width_;
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      const int x0 = bxi * kBlock;
      const int y0 = byi * kBlock;
      const std::uint8_t* fblock = fdata + static_cast<std::size_t>(y0) * stride + x0;
      const std::uint8_t* rblock = rdata + static_cast<std::size_t>(y0) * stride + x0;
      ++res.total_blocks;
      // Mode decision by SAD against each predictor. On keyframes the mode
      // is forced intra, so neither SAD is needed at all; otherwise the
      // inter SAD exits early once it exceeds the (complete) intra SAD —
      // SADs are monotone in pixels covered, so a partial sum past the
      // intra SAD already decides the comparison and no quantity derived
      // from the exact inter total is ever used on that path.
      bool inter = false;
      bool skip = false;
      if (!keyframe) {
        std::int32_t sad_intra = 0;
        for (int y = 0; y < kBlock; ++y) {
          const std::uint8_t* frow = fblock + static_cast<std::size_t>(y) * stride;
          for (int x = 0; x < kBlock; ++x) {
            sad_intra += std::abs(static_cast<int>(frow[x]) - 128);
          }
        }
        std::int32_t sad_inter = 0;
        for (int y = 0; y < kBlock && sad_inter <= sad_intra; ++y) {
          const std::uint8_t* frow = fblock + static_cast<std::size_t>(y) * stride;
          const std::uint8_t* rrow = rblock + static_cast<std::size_t>(y) * stride;
          for (int x = 0; x < kBlock; ++x) {
            sad_inter += std::abs(static_cast<int>(frow[x]) - static_cast<int>(rrow[x]));
          }
        }
        inter = sad_inter <= sad_intra;
        // SKIP decision before the transform: when the block barely differs
        // from the reference, copy it (real codecs' SKIP mode). Without
        // this, the encoder would spend bits forever chasing its own
        // quantization noise on static content — and a "blank" screen would
        // never go quiet on the wire, breaking the premise of the paper's
        // lag measurement.
        skip = inter && sad_inter < kSkipSad;
      }
      if (skip) {
        res.bits += 1;
        ++res.skip_blocks;
        if (out != nullptr) {
          out->modes[static_cast<std::size_t>(byi) * bx + bxi] = BlockMode::kInter;
        }
        if (recon != nullptr) {
          std::uint8_t* dst = recon->data() + static_cast<std::size_t>(y0) * stride + x0;
          for (int y = 0; y < kBlock; ++y) {
            std::memcpy(dst + static_cast<std::size_t>(y) * stride,
                        rblock + static_cast<std::size_t>(y) * stride, kBlock);
          }
        }
        continue;
      }
      for (int y = 0; y < kBlock; ++y) {
        const std::uint8_t* frow = fblock + static_cast<std::size_t>(y) * stride;
        const std::uint8_t* rrow = rblock + static_cast<std::size_t>(y) * stride;
        for (int x = 0; x < kBlock; ++x) {
          pred[y * kBlock + x] = inter ? static_cast<double>(rrow[x]) : 128.0;
          residual[y * kBlock + x] = static_cast<double>(frow[x]) - pred[y * kBlock + x];
        }
      }
      dct2d_8x8(residual.data(), coeffs.data());
      std::int64_t block_bits = 10;  // mode + qdelta + EOB overhead
      bool all_zero = true;
      std::int16_t* out_coeffs =
          out != nullptr
              ? out->coeffs.data() + (static_cast<std::size_t>(byi) * bx + bxi) * kBlock * kBlock
              : nullptr;
      for (int i = 0; i < kBlock * kBlock; ++i) {
        const double step = qstep * kQuant.weight[i];
        const double c = coeffs[i] / step;
        const auto q = static_cast<std::int16_t>(std::clamp(
            std::lround(c), static_cast<long>(INT16_MIN), static_cast<long>(INT16_MAX)));
        block_bits += kQuant.bits[q < 0 ? -static_cast<int>(q) : static_cast<int>(q)];
        if (q != 0) all_zero = false;
        deq[i] = static_cast<double>(q) * step;
        if (out_coeffs != nullptr) out_coeffs[i] = q;
      }
      // Skip-block coding: an inter block with an all-zero residual costs a
      // fraction of a bit (run-length coded), like real codecs' SKIP mode —
      // this is what makes a static scene nearly free (Finding 3) and keeps
      // the blank frames of the lag feed under the big-packet threshold.
      if (inter && all_zero) {
        block_bits = 1;
        ++res.skip_blocks;
      }
      res.bits += block_bits;
      if (out != nullptr) {
        out->modes[static_cast<std::size_t>(byi) * bx + bxi] =
            inter ? BlockMode::kInter : BlockMode::kIntra;
      }
      if (recon != nullptr) {
        idct2d_8x8(deq.data(), rec.data());
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            const double v = pred[y * kBlock + x] + rec[y * kBlock + x];
            recon->set(x0 + x, y0 + y, static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0)));
          }
        }
      }
    }
  }
  return res;
}

std::shared_ptr<EncodedFrame> VideoEncoder::acquire_output_frame() {
  // Recycle a pooled frame once its last external reference is gone: the
  // coeffs/modes capacity survives, so the steady-state encode path makes
  // zero heap allocations (tests/media/test_codec_hotpath.cpp). A frame the
  // caller still holds is never touched — a fresh one is allocated instead —
  // so recycling cannot change any encoded bit.
  for (auto& slot : frame_pool_) {
    if (slot == nullptr) {
      slot = std::make_shared<EncodedFrame>();
      return slot;
    }
    if (slot.use_count() == 1) return slot;
  }
  return std::make_shared<EncodedFrame>();
}

std::shared_ptr<EncodedFrame> VideoEncoder::encode(const Frame& frame) {
  if (frame.width() != width_ || frame.height() != height_) {
    throw std::invalid_argument{"frame size does not match encoder"};
  }
  const bool keyframe = next_seq_ % cfg_.keyframe_interval == 0;
  const double per_frame_budget =
      static_cast<double>(cfg_.target_bitrate.bits_per_second()) / cfg_.fps;
  // Keyframes may spend a few frames' budget; the virtual buffer charges the
  // overdraft to subsequent frames.
  const double frame_target = per_frame_budget * (keyframe ? 3.0 : 1.0);

  // Trial pass at the current quantizer, then one corrective pass.
  const EncodeResult trial = encode_pass(frame, keyframe, qstep_, nullptr, nullptr);
  double q = qstep_;
  if (trial.bits > 0 && frame_target > 0) {
    const double ratio = static_cast<double>(trial.bits) / frame_target;
    q = std::clamp(qstep_ * std::pow(ratio, 0.8), cfg_.min_qstep, cfg_.max_qstep);
  }

  auto out = acquire_output_frame();
  out->width = width_;
  out->height = height_;
  out->keyframe = keyframe;
  out->qstep = q;
  out->sequence = next_seq_++;
  const EncodeResult real = encode_pass(frame, keyframe, q, out.get(), &recon_scratch_);
  out->bytes = std::max<std::int64_t>(div_round_up(real.bits, 8), 64);
  out->wire_bytes = out->bytes;
  out->skip_blocks = real.skip_blocks;
  out->total_blocks = real.total_blocks;
  // encode_pass wrote every pixel of the scratch frame; swap it in as the
  // new closed-loop reference (the old reference becomes next call's
  // scratch) — no per-frame Frame allocation.
  std::swap(recon_, recon_scratch_);

  // Buffer feedback nudges the starting quantizer of the next frame.
  buffer_bits_ += static_cast<double>(real.bits) - per_frame_budget;
  buffer_bits_ = std::max(buffer_bits_, 0.0);
  const double pressure = buffer_bits_ / (per_frame_budget * 4.0 + 1.0);
  qstep_ = std::clamp(q * (1.0 + 0.2 * pressure), cfg_.min_qstep, cfg_.max_qstep);
  return out;
}

VideoDecoder::VideoDecoder(int width, int height)
    : width_(width), height_(height), current_(width, height, 0), scratch_(width, height, 0) {
  if (width % kBlock != 0 || height % kBlock != 0) {
    throw std::invalid_argument{"frame dimensions must be multiples of 8"};
  }
}

const Frame& VideoDecoder::decode(const EncodedFrame& frame) {
  if (frame.width != width_ || frame.height != height_) {
    throw std::invalid_argument{"encoded frame size does not match decoder"};
  }
  const int bx = width_ / kBlock;
  const int by = height_ / kBlock;
  alignas(32) Block deq, rec;
  for (int byi = 0; byi < by; ++byi) {
    for (int bxi = 0; bxi < bx; ++bxi) {
      const int x0 = bxi * kBlock;
      const int y0 = byi * kBlock;
      const bool inter = frame.modes[static_cast<std::size_t>(byi) * bx + bxi] == BlockMode::kInter;
      const std::int16_t* cblock =
          frame.coeffs.data() + (static_cast<std::size_t>(byi) * bx + bxi) * kBlock * kBlock;
      for (int i = 0; i < kBlock * kBlock; ++i) {
        const double step = frame.qstep * kQuant.weight[i];
        deq[i] = static_cast<double>(cblock[i]) * step;
      }
      idct2d_8x8(deq.data(), rec.data());
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          const double pred = inter ? static_cast<double>(current_.at(x0 + x, y0 + y)) : 128.0;
          scratch_.set(x0 + x, y0 + y,
                       static_cast<std::uint8_t>(std::clamp(pred + rec[y * kBlock + x] + 0.5, 0.0, 255.0)));
        }
      }
    }
  }
  // Every pixel of scratch_ was just written; swap it in (the previous
  // frame becomes the next call's scratch) — no per-frame allocation.
  std::swap(current_, scratch_);
  ++frames_decoded_;
  return current_;
}

}  // namespace vc::media
