// Toy block-transform video codec.
//
// This is a real codec, not a size model: frames are split into 8×8 blocks,
// predicted (intra flat / inter from the previous *reconstructed* frame),
// DCT-transformed, quantized, and entropy-sized; the decoder inverts the
// pipeline bit-exactly from the quantized coefficients. It shares the two
// properties of production codecs that the paper's QoE findings rest on:
//   1. low-motion content costs far fewer bits at equal quality (Finding 3),
//   2. quality degrades smoothly as rate control raises the quantizer to meet
//      a bitrate target, and collapses when frames are lost (Figs 12, 17).
//
// The encoded byte size is an entropy estimate over the quantized
// coefficients rather than a literal bitstream; packetization uses that size
// on the wire, while decoding uses the coefficients carried alongside.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "media/frame.h"
#include "net/packet.h"

namespace vc::media {

inline constexpr int kBlock = 8;

/// Per-block prediction mode.
enum class BlockMode : std::uint8_t { kIntra = 0, kInter = 1 };

/// A compressed frame. Immutable after encoding; shared between fan-out
/// copies when a relay forwards the stream to multiple receivers.
struct EncodedFrame final : public net::PacketPayload {
  int width = 0;
  int height = 0;
  bool keyframe = false;
  double qstep = 0.0;
  /// Modeled compressed size of the quality payload.
  std::int64_t bytes = 0;
  /// Size on the wire including FEC/redundancy padding added by the sending
  /// client (>= bytes). Real VCA streams are near-CBR at the policy rate:
  /// the codec payload is only part of it.
  std::int64_t wire_bytes = 0;
  /// Display sequence number assigned by the encoder.
  std::int64_t sequence = 0;
  /// SKIP accounting: blocks coded as SKIP (early-skip copy or all-zero
  /// inter residual) out of total_blocks. skip_blocks/total_blocks is the
  /// frame's SKIP ratio — near 1.0 on static content (Finding 3).
  std::int32_t skip_blocks = 0;
  std::int32_t total_blocks = 0;
  std::vector<std::int16_t> coeffs;   // block-major, 64 per block
  std::vector<BlockMode> modes;       // one per block
};

class VideoEncoder {
 public:
  struct Config {
    DataRate target_bitrate = DataRate::kbps(800);
    double fps = 15.0;
    /// A keyframe every this many frames (and at stream start).
    int keyframe_interval = 60;
    double min_qstep = 0.1;
    double max_qstep = 160.0;
  };

  VideoEncoder(int width, int height, Config cfg);

  /// Changes the bitrate target mid-stream (rate adaptation).
  void set_target_bitrate(DataRate rate);
  DataRate target_bitrate() const { return cfg_.target_bitrate; }

  /// Encodes the next frame in display order. (Mutable so the sending
  /// client can stamp wire_bytes; treat as immutable once transmitted.)
  std::shared_ptr<EncodedFrame> encode(const Frame& frame);

  /// The encoder's own reconstruction of the last frame (what a decoder
  /// with no losses would show).
  const Frame& last_reconstructed() const { return recon_; }
  double current_qstep() const { return qstep_; }

 private:
  struct EncodeResult {
    std::int64_t bits = 0;
    std::int32_t skip_blocks = 0;
    std::int32_t total_blocks = 0;
  };
  EncodeResult encode_pass(const Frame& frame, bool keyframe, double qstep, EncodedFrame* out,
                           Frame* recon) const;
  /// Pooled EncodedFrame: recycles a previously returned frame once the
  /// caller has dropped it (use_count()==1), else allocates. Keeps the
  /// steady-state encode path allocation-free without ever mutating a frame
  /// a consumer still holds.
  std::shared_ptr<EncodedFrame> acquire_output_frame();

  int width_;
  int height_;
  Config cfg_;
  Frame recon_;           // closed-loop reference
  Frame recon_scratch_;   // encode_pass target, swapped into recon_ per frame
  std::array<std::shared_ptr<EncodedFrame>, 4> frame_pool_;
  double qstep_ = 10.0;
  std::int64_t next_seq_ = 0;
  double buffer_bits_ = 0.0;  // virtual buffer fullness for rate control
};

class VideoDecoder {
 public:
  VideoDecoder(int width, int height);

  /// Decodes a frame. The decoder tolerates gaps: a missing frame is simply
  /// never passed in, and the previously decoded frame stays on screen
  /// (freeze) — callers render current() at display times.
  const Frame& decode(const EncodedFrame& frame);

  const Frame& current() const { return current_; }
  std::int64_t frames_decoded() const { return frames_decoded_; }

 private:
  int width_;
  int height_;
  Frame current_;
  Frame scratch_;  // decode target, swapped into current_ per frame
  std::int64_t frames_decoded_ = 0;
};

}  // namespace vc::media
