// Raster frames for the media pipeline.
//
// Frames are single-plane 8-bit luma. The paper's QoE metrics (PSNR, SSIM,
// VIFp as computed by VQMT) operate on the luminance channel, so a luma
// plane carries all the signal the metrics need while keeping the toy codec
// and the procedural feeds fast.
#pragma once

#include <cstdint>
#include <vector>

namespace vc::media {

class Frame {
 public:
  Frame() = default;
  Frame(int width, int height, std::uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  std::uint8_t at(int x, int y) const { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  void set(int x, int y, std::uint8_t v) { data_[static_cast<std::size_t>(y) * width_ + x] = v; }
  /// Clamped accessor: reads outside the frame return the nearest edge pixel.
  std::uint8_t at_clamped(int x, int y) const;

  const std::uint8_t* data() const { return data_.data(); }
  std::uint8_t* data() { return data_.data(); }
  std::size_t size() const { return data_.size(); }

  /// Extracts the rectangle [x, x+w) × [y, y+h); must lie inside the frame.
  Frame crop(int x, int y, int w, int h) const;
  /// Bilinear resize.
  Frame resized(int new_w, int new_h) const;

  /// Mean squared error against another frame of identical dimensions.
  double mse(const Frame& other) const;

  friend bool operator==(const Frame&, const Frame&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace vc::media
