#include "media/frame.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vc::media {

Frame::Frame(int width, int height, std::uint8_t fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  if (width <= 0 || height <= 0) throw std::invalid_argument{"frame dimensions must be positive"};
}

std::uint8_t Frame::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

Frame Frame::crop(int x, int y, int w, int h) const {
  if (x < 0 || y < 0 || w <= 0 || h <= 0 || x + w > width_ || y + h > height_) {
    throw std::out_of_range{"crop rectangle outside frame"};
  }
  Frame out{w, h};
  for (int row = 0; row < h; ++row) {
    const std::uint8_t* src = data_.data() + static_cast<std::size_t>(y + row) * width_ + x;
    std::copy(src, src + w, out.data_.data() + static_cast<std::size_t>(row) * w);
  }
  return out;
}

Frame Frame::resized(int new_w, int new_h) const {
  if (new_w <= 0 || new_h <= 0) throw std::invalid_argument{"resize dimensions must be positive"};
  if (new_w == width_ && new_h == height_) return *this;
  Frame out{new_w, new_h};
  const double sx = static_cast<double>(width_) / new_w;
  const double sy = static_cast<double>(height_) / new_h;
  for (int y = 0; y < new_h; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const int y0 = static_cast<int>(std::floor(fy));
    const double wy = fy - y0;
    for (int x = 0; x < new_w; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const int x0 = static_cast<int>(std::floor(fx));
      const double wx = fx - x0;
      const double v = (1 - wy) * ((1 - wx) * at_clamped(x0, y0) + wx * at_clamped(x0 + 1, y0)) +
                       wy * ((1 - wx) * at_clamped(x0, y0 + 1) + wx * at_clamped(x0 + 1, y0 + 1));
      out.set(x, y, static_cast<std::uint8_t>(std::clamp(v + 0.5, 0.0, 255.0)));
    }
  }
  return out;
}

double Frame::mse(const Frame& other) const {
  if (width_ != other.width_ || height_ != other.height_) {
    throw std::invalid_argument{"MSE requires identical dimensions"};
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = static_cast<double>(data_[i]) - static_cast<double>(other.data_[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(data_.size());
}

}  // namespace vc::media
