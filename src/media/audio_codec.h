// Toy transform audio codec (Opus stand-in).
//
// 20 ms frames are DCT-transformed; the bit budget per frame (from the
// target bitrate) buys the top-magnitude coefficients, quantized. Decoding
// inverts exactly; lost frames decode to silence — the dropout artifact the
// paper hears on Webex under tight bandwidth caps (Fig 18).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/units.h"
#include "media/audio.h"
#include "net/packet.h"

namespace vc::media {

struct EncodedAudioFrame final : public net::PacketPayload {
  int sample_rate = 16'000;
  int frame_samples = 320;
  std::int64_t sequence = 0;
  /// Modeled compressed size.
  std::int64_t bytes = 0;
  double qstep = 1.0;
  std::vector<std::uint16_t> indices;  // kept coefficient positions
  std::vector<std::int16_t> values;    // quantized values, parallel to indices
};

class AudioEncoder {
 public:
  struct Config {
    DataRate bitrate = DataRate::kbps(64);
    int sample_rate = 16'000;
    int frame_ms = 20;
  };

  explicit AudioEncoder(Config cfg);

  int frame_samples() const { return frame_samples_; }
  DataRate bitrate() const { return cfg_.bitrate; }
  void set_bitrate(DataRate rate) { cfg_.bitrate = rate; }

  /// Encodes exactly frame_samples() samples.
  std::shared_ptr<const EncodedAudioFrame> encode(std::span<const float> samples);

 private:
  Config cfg_;
  int frame_samples_;
  std::int64_t next_seq_ = 0;
};

class AudioDecoder {
 public:
  explicit AudioDecoder(int frame_samples) : frame_samples_(frame_samples) {}

  /// Decodes one frame to PCM.
  std::vector<float> decode(const EncodedAudioFrame& frame) const;
  /// Concealment output for a lost frame (silence).
  std::vector<float> conceal() const { return std::vector<float>(frame_samples_, 0.0F); }

 private:
  int frame_samples_;
};

}  // namespace vc::media
