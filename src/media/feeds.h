// Procedural video feeds — the simulator's replacement for the paper's
// replayed video files (Section 3.1 "Media feeder").
//
// Three content classes drive the experiments:
//  * TalkingHeadFeed — the "low-motion" feed: a single person against a
//    stationary background, talking with occasional hand gestures.
//  * TourGuideFeed  — the "high-motion" feed: panning outdoor scenes with
//    moving objects and periodic scene changes.
//  * FlashFeed      — blank screen with a bright image flashed periodically
//    (two-second period), used for streaming-lag measurement (Fig 2).
// PaddedFeed wraps any feed with a margin so client UI widgets never occlude
// content (Fig 13); the recorder pipeline later crops the padding back out.
//
// All feeds are deterministic functions of (seed, frame index): replaying a
// feed twice produces identical pixels, which is what makes benchmarking
// reproducible (design goal D3).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "media/frame.h"

namespace vc::media {

class VideoFeed {
 public:
  virtual ~VideoFeed() = default;
  virtual int width() const = 0;
  virtual int height() const = 0;
  virtual double fps() const = 0;
  /// Renders frame `index` (index 0 is the first frame). Must be pure.
  virtual Frame frame_at(std::int64_t index) const = 0;
};

struct FeedParams {
  int width = 320;
  int height = 240;
  double fps = 15.0;
  std::uint64_t seed = 1;
  /// Camera sensor noise (std-dev in luma units), applied per pixel and per
  /// frame, deterministically. Real capture pipelines are never noise-free —
  /// this is what keeps a "low-motion" camera feed from compressing to
  /// nothing, and real VCA rates at ~1 Mbps for a talking head. Synthetic
  /// feeds (FlashFeed, BlankFeed) carry no noise, exactly like the paper's
  /// digitally generated blank-screen file.
  double sensor_noise_sigma = 2.0;
};

/// Low-motion: static background, slightly bobbing head, animated mouth,
/// occasional hand gesture.
class TalkingHeadFeed final : public VideoFeed {
 public:
  explicit TalkingHeadFeed(FeedParams params = {});
  int width() const override { return p_.width; }
  int height() const override { return p_.height; }
  double fps() const override { return p_.fps; }
  Frame frame_at(std::int64_t index) const override;

 private:
  FeedParams p_;
  Frame background_;
};

/// High-motion: panning textured background, moving foreground objects, and
/// a full scene change every few seconds.
class TourGuideFeed final : public VideoFeed {
 public:
  explicit TourGuideFeed(FeedParams params = {});
  int width() const override { return p_.width; }
  int height() const override { return p_.height; }
  double fps() const override { return p_.fps; }
  Frame frame_at(std::int64_t index) const override;

 private:
  FeedParams p_;
  double scene_change_period_sec_ = 5.0;
};

/// Lag-measurement feed: dark blank frames, with a bright checker image for
/// `flash_frames` frames every `period_sec` seconds.
class FlashFeed final : public VideoFeed {
 public:
  FlashFeed(FeedParams params = {}, double period_sec = 2.0, int flash_frames = 2);
  int width() const override { return p_.width; }
  int height() const override { return p_.height; }
  double fps() const override { return p_.fps; }
  Frame frame_at(std::int64_t index) const override;

  double period_sec() const { return period_sec_; }
  /// True if frame `index` is part of a flash.
  bool is_flash_frame(std::int64_t index) const;

 private:
  FeedParams p_;
  double period_sec_;
  int flash_frames_;
};

/// Constant dark frame (a participant with camera muted).
class BlankFeed final : public VideoFeed {
 public:
  explicit BlankFeed(FeedParams params = {});
  int width() const override { return p_.width; }
  int height() const override { return p_.height; }
  double fps() const override { return p_.fps; }
  Frame frame_at(std::int64_t index) const override;

 private:
  FeedParams p_;
};

/// Adds a uniform margin of `pad` pixels around an inner feed (Fig 13).
class PaddedFeed final : public VideoFeed {
 public:
  PaddedFeed(std::shared_ptr<const VideoFeed> inner, int pad, std::uint8_t pad_luma = 16);
  int width() const override { return inner_->width() + 2 * pad_; }
  int height() const override { return inner_->height() + 2 * pad_; }
  double fps() const override { return inner_->fps(); }
  Frame frame_at(std::int64_t index) const override;

  int pad() const { return pad_; }
  const VideoFeed& inner() const { return *inner_; }

 private:
  std::shared_ptr<const VideoFeed> inner_;
  int pad_;
  std::uint8_t pad_luma_;
};

/// Mean absolute per-pixel difference between consecutive frames, averaged
/// over `frames` — the quantitative notion of "motion" used in tests and the
/// codec ablation.
double mean_motion(const VideoFeed& feed, std::int64_t frames);

}  // namespace vc::media
