#include "media/audio_codec.h"

#include <algorithm>
#include <map>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace vc::media {
namespace {

// Normalized DCT-II basis, cached per frame length as one contiguous n×n
// matrix (row k at basis + k·n): basis[k·n + i] = norm(k) * cos(pi (i+0.5)
// k / n). O(N^2) transforms with no trig in the inner loop (the naive
// per-sample std::cos dominated whole benchmark runs), and one allocation
// per (thread, n) instead of n+1 with the old vector-of-vectors.
const double* dct_basis(std::size_t n) {
  // Per-thread cache: sessions running concurrently on an ExperimentRunner
  // pool each rebuild the handful of bases they use instead of contending on
  // a mutex — this was the last lock on the codec path. A codec instance
  // uses one frame length for its whole life, so the steady-state lookup is
  // a single integer compare against the last-used entry; the map only runs
  // when the thread switches frame lengths. Returned pointers stay valid:
  // map nodes are stable and entries are never erased.
  struct BasisCache {
    std::size_t last_n = 0;
    const double* last = nullptr;
    std::map<std::size_t, std::vector<double>> store;
  };
  thread_local BasisCache cache;
  if (cache.last_n == n && cache.last != nullptr) return cache.last;
  auto it = cache.store.find(n);
  if (it == cache.store.end()) {
    std::vector<double> basis(n * n);
    const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
    const double norm = std::sqrt(2.0 / static_cast<double>(n));
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        basis[k * n + i] = (k == 0 ? norm0 : norm) *
                           std::cos(std::numbers::pi * (static_cast<double>(i) + 0.5) *
                                    static_cast<double>(k) / static_cast<double>(n));
      }
    }
    it = cache.store.emplace(n, std::move(basis)).first;
  }
  cache.last_n = n;
  cache.last = it->second.data();
  return cache.last;
}

std::vector<double> dct(std::span<const float> x) {
  const auto n = x.size();
  const double* basis = dct_basis(n);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    const double* row = basis + k * n;
    for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(x[i]) * row[i];
    out[k] = acc;
  }
  return out;
}

std::vector<float> idct(const std::vector<double>& c) {
  const auto n = c.size();
  const double* basis = dct_basis(n);
  std::vector<double> acc(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    if (c[k] == 0.0) continue;  // sparse: only kept coefficients contribute
    const double* row = basis + k * n;
    const double ck = c[k];
    for (std::size_t i = 0; i < n; ++i) acc[i] += ck * row[i];
  }
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

// Per-coefficient storage cost: position + sign/magnitude.
constexpr std::int64_t kBitsPerCoeff = 16;
constexpr std::int64_t kFrameHeaderBits = 32;

}  // namespace

AudioEncoder::AudioEncoder(Config cfg) : cfg_(cfg) {
  if (cfg_.sample_rate <= 0 || cfg_.frame_ms <= 0) throw std::invalid_argument{"bad audio config"};
  frame_samples_ = cfg_.sample_rate * cfg_.frame_ms / 1000;
}

std::shared_ptr<const EncodedAudioFrame> AudioEncoder::encode(std::span<const float> samples) {
  if (static_cast<int>(samples.size()) != frame_samples_) {
    throw std::invalid_argument{"audio frame size mismatch"};
  }
  const auto coeffs = dct(samples);

  // Budget: bits for this 20 ms frame.
  const double frame_bits =
      static_cast<double>(cfg_.bitrate.bits_per_second()) * cfg_.frame_ms / 1000.0;
  auto keep = static_cast<std::size_t>(std::max(1.0, (frame_bits - kFrameHeaderBits) / kBitsPerCoeff));
  keep = std::min(keep, coeffs.size());

  // Rank coefficients by magnitude.
  std::vector<std::size_t> order(coeffs.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep), order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return std::abs(coeffs[a]) > std::abs(coeffs[b]);
                    });

  auto out = std::make_shared<EncodedAudioFrame>();
  out->sample_rate = cfg_.sample_rate;
  out->frame_samples = frame_samples_;
  out->sequence = next_seq_++;

  double max_mag = 0.0;
  for (std::size_t i = 0; i < keep; ++i) max_mag = std::max(max_mag, std::abs(coeffs[order[i]]));
  out->qstep = std::max(max_mag / 8192.0, 1e-4);
  out->indices.reserve(keep);
  out->values.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const std::size_t idx = order[i];
    const auto q = static_cast<std::int16_t>(
        std::clamp(std::lround(coeffs[idx] / out->qstep), -32768L, 32767L));
    if (q == 0) continue;
    out->indices.push_back(static_cast<std::uint16_t>(idx));
    out->values.push_back(q);
  }
  out->bytes = (kFrameHeaderBits + kBitsPerCoeff * static_cast<std::int64_t>(out->values.size())) / 8;
  return out;
}

std::vector<float> AudioDecoder::decode(const EncodedAudioFrame& frame) const {
  if (frame.frame_samples != frame_samples_) throw std::invalid_argument{"audio frame size mismatch"};
  std::vector<double> coeffs(static_cast<std::size_t>(frame.frame_samples), 0.0);
  for (std::size_t i = 0; i < frame.indices.size(); ++i) {
    coeffs[frame.indices[i]] = static_cast<double>(frame.values[i]) * frame.qstep;
  }
  return idct(coeffs);
}

}  // namespace vc::media
