// Post-processing of recorded sessions before QoE scoring (Section 4.3):
// crop out the protective padding, resize to the injected feed's layout, and
// synchronize start/end by maximizing per-frame SSIM.
#pragma once

#include <cstdint>
#include <vector>

#include "media/frame.h"

namespace vc::media {

/// A desktop-recorded video: frames at a fixed rate.
struct RecordedVideo {
  double fps = 15.0;
  std::vector<Frame> frames;
};

/// Crops `pad` pixels from each side of every frame and resizes to
/// (target_w, target_h), mirroring the paper's crop+resize step.
RecordedVideo crop_and_resize(const RecordedVideo& recording, int pad, int target_w, int target_h);

/// Finds the frame shift (0..max_shift) of `recording` relative to
/// `reference` that maximizes mean SSIM over up to `probe_frames` sampled
/// pairs — the "trim so per-frame SSIM is maximized" step.
std::int64_t best_temporal_shift(const std::vector<Frame>& reference,
                                 const std::vector<Frame>& recording, std::int64_t max_shift,
                                 std::int64_t probe_frames = 20);

/// Applies a shift and truncates both sequences to their common length.
struct AlignedPair {
  std::vector<Frame> reference;
  std::vector<Frame> recording;
};
AlignedPair align_sequences(std::vector<Frame> reference, std::vector<Frame> recording,
                            std::int64_t shift);

}  // namespace vc::media
