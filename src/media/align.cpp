#include "media/align.h"

#include <algorithm>
#include <stdexcept>

#include "media/qoe/video_metrics.h"

namespace vc::media {

RecordedVideo crop_and_resize(const RecordedVideo& recording, int pad, int target_w, int target_h) {
  RecordedVideo out;
  out.fps = recording.fps;
  out.frames.reserve(recording.frames.size());
  for (const auto& f : recording.frames) {
    if (f.width() <= 2 * pad || f.height() <= 2 * pad) {
      throw std::invalid_argument{"padding exceeds frame size"};
    }
    Frame inner = pad > 0 ? f.crop(pad, pad, f.width() - 2 * pad, f.height() - 2 * pad) : f;
    out.frames.push_back(inner.resized(target_w, target_h));
  }
  return out;
}

std::int64_t best_temporal_shift(const std::vector<Frame>& reference,
                                 const std::vector<Frame>& recording, std::int64_t max_shift,
                                 std::int64_t probe_frames) {
  if (reference.empty() || recording.empty()) throw std::invalid_argument{"empty sequence"};
  double best = -2.0;
  std::int64_t best_shift = 0;
  for (std::int64_t shift = 0; shift <= max_shift; ++shift) {
    const auto common = static_cast<std::int64_t>(
        std::min(reference.size(), recording.size() - std::min<std::size_t>(
                                       static_cast<std::size_t>(shift), recording.size())));
    if (common <= 0) break;
    const std::int64_t stride = std::max<std::int64_t>(1, common / probe_frames);
    double acc = 0.0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < common; i += stride) {
      acc += qoe::ssim(reference[static_cast<std::size_t>(i)],
                       recording[static_cast<std::size_t>(i + shift)]);
      ++n;
    }
    const double score = acc / static_cast<double>(n);
    if (score > best) {
      best = score;
      best_shift = shift;
    }
  }
  return best_shift;
}

AlignedPair align_sequences(std::vector<Frame> reference, std::vector<Frame> recording,
                            std::int64_t shift) {
  AlignedPair out;
  if (shift < 0) throw std::invalid_argument{"negative shift"};
  if (static_cast<std::size_t>(shift) >= recording.size()) {
    throw std::invalid_argument{"shift exceeds recording length"};
  }
  recording.erase(recording.begin(), recording.begin() + static_cast<std::ptrdiff_t>(shift));
  const std::size_t common = std::min(reference.size(), recording.size());
  reference.resize(common);
  recording.resize(common);
  out.reference = std::move(reference);
  out.recording = std::move(recording);
  return out;
}

}  // namespace vc::media
