// Audio signals, procedural speech synthesis, and the audio preprocessing
// steps of the paper's pipeline (Section 4.4): loudness normalization and
// offset alignment (the audio-offset-finder analog).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace vc::media {

struct AudioSignal {
  int sample_rate = 16'000;
  std::vector<float> samples;

  double duration_sec() const {
    return sample_rate > 0 ? static_cast<double>(samples.size()) / sample_rate : 0.0;
  }
  double rms() const;
};

/// Synthesizes speech-like audio: voiced syllables (harmonic stacks shaped by
/// formant-ish resonance and an amplitude envelope) separated by pauses.
/// Deterministic in (seconds, seed).
AudioSignal synthesize_voice(double seconds, std::uint64_t seed, int sample_rate = 16'000);

/// Scales the signal to a target RMS (the EBU R128-style normalization step;
/// we normalize energy rather than perceptual LUFS).
void normalize_loudness(AudioSignal& signal, double target_rms = 0.1);

/// Estimates the shift (in samples) that best aligns `degraded` to
/// `reference` by cross-correlating short-time energy envelopes; positive
/// means `degraded` lags. Searches |shift| <= max_shift_samples.
std::int64_t find_offset_samples(const AudioSignal& reference, const AudioSignal& degraded,
                                 std::int64_t max_shift_samples);

/// Applies a shift: drops `shift` leading samples (or pads zeros when
/// negative) and truncates/pads to `length`.
AudioSignal shifted(const AudioSignal& signal, std::int64_t shift, std::size_t length);

}  // namespace vc::media
