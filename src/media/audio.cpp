#include "media/audio.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace vc::media {

double AudioSignal::rms() const {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (float s : samples) acc += static_cast<double>(s) * s;
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

AudioSignal synthesize_voice(double seconds, std::uint64_t seed, int sample_rate) {
  AudioSignal out;
  out.sample_rate = sample_rate;
  const auto total = static_cast<std::size_t>(seconds * sample_rate);
  out.samples.assign(total, 0.0F);
  Rng rng{seed};

  std::size_t pos = 0;
  const double f0_base = rng.uniform(110.0, 190.0);  // speaker pitch
  while (pos < total) {
    // A syllable: 120–280 ms of voiced sound.
    const auto syllable = static_cast<std::size_t>(rng.uniform(0.12, 0.28) * sample_rate);
    const double f0 = f0_base * rng.uniform(0.9, 1.15);   // intonation
    const double formant = rng.uniform(500.0, 2200.0);    // vowel color
    const double breath = rng.uniform(0.02, 0.06);        // noise floor
    for (std::size_t i = 0; i < syllable && pos + i < total; ++i) {
      const double t = static_cast<double>(i) / sample_rate;
      const double frac = static_cast<double>(i) / static_cast<double>(syllable);
      // Attack-decay envelope.
      const double env = std::sin(std::numbers::pi * frac);
      double v = 0.0;
      for (int h = 1; h <= 8; ++h) {
        const double fh = f0 * h;
        if (fh > sample_rate / 2.0) break;
        // Resonance: harmonics near the formant are boosted.
        const double gain = 1.0 / h * (1.0 + 2.0 * std::exp(-std::pow((fh - formant) / 350.0, 2)));
        v += gain * std::sin(2.0 * std::numbers::pi * fh * t);
      }
      v = 0.18 * env * v + breath * env * rng.normal();
      out.samples[pos + i] = static_cast<float>(v);
    }
    pos += syllable;
    // Pause between syllables / words: 30–250 ms.
    pos += static_cast<std::size_t>(rng.uniform(0.03, 0.25) * sample_rate);
  }
  return out;
}

void normalize_loudness(AudioSignal& signal, double target_rms) {
  const double r = signal.rms();
  if (r <= 1e-9) return;
  const double k = target_rms / r;
  for (auto& s : signal.samples) s = static_cast<float>(s * k);
}

namespace {

// Short-time energy envelope with 10 ms hops.
std::vector<double> energy_envelope(const AudioSignal& s) {
  const auto hop = static_cast<std::size_t>(s.sample_rate / 100);
  std::vector<double> env;
  for (std::size_t i = 0; i + hop <= s.samples.size(); i += hop) {
    double acc = 0.0;
    for (std::size_t k = 0; k < hop; ++k) acc += std::abs(static_cast<double>(s.samples[i + k]));
    env.push_back(acc / static_cast<double>(hop));
  }
  return env;
}

}  // namespace

std::int64_t find_offset_samples(const AudioSignal& reference, const AudioSignal& degraded,
                                 std::int64_t max_shift_samples) {
  const auto ref_env = energy_envelope(reference);
  const auto deg_env = energy_envelope(degraded);
  if (ref_env.empty() || deg_env.empty()) return 0;
  const auto hop = static_cast<std::int64_t>(reference.sample_rate / 100);
  const std::int64_t max_shift_hops = max_shift_samples / hop;

  double best_score = -1e300;
  std::int64_t best_shift = 0;
  for (std::int64_t shift = -max_shift_hops; shift <= max_shift_hops; ++shift) {
    double score = 0.0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(ref_env.size()); ++i) {
      const std::int64_t j = i + shift;
      if (j < 0 || j >= static_cast<std::int64_t>(deg_env.size())) continue;
      score += ref_env[static_cast<std::size_t>(i)] * deg_env[static_cast<std::size_t>(j)];
      ++n;
    }
    if (n > 0) score /= static_cast<double>(n);
    if (score > best_score) {
      best_score = score;
      best_shift = shift;
    }
  }
  return best_shift * hop;
}

AudioSignal shifted(const AudioSignal& signal, std::int64_t shift, std::size_t length) {
  AudioSignal out;
  out.sample_rate = signal.sample_rate;
  out.samples.assign(length, 0.0F);
  for (std::size_t i = 0; i < length; ++i) {
    const std::int64_t j = static_cast<std::int64_t>(i) + shift;
    if (j >= 0 && j < static_cast<std::int64_t>(signal.samples.size())) {
      out.samples[i] = signal.samples[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

}  // namespace vc::media
