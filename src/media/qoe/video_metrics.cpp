#include "media/qoe/video_metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vc::media::qoe {
namespace {

void require_same_size(const Frame& a, const Frame& b) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    throw std::invalid_argument{"metric inputs must be equal-size, non-empty frames"};
  }
}

// Double-precision image plane used by SSIM/VIFp internals.
struct DImage {
  int w = 0;
  int h = 0;
  std::vector<double> px;

  DImage() = default;
  DImage(int w_, int h_) : w(w_), h(h_), px(static_cast<std::size_t>(w_) * h_, 0.0) {}
  explicit DImage(const Frame& f) : DImage(f.width(), f.height()) {
    for (std::size_t i = 0; i < px.size(); ++i) px[i] = static_cast<double>(f.data()[i]);
  }
  double at(int x, int y) const { return px[static_cast<std::size_t>(y) * w + x]; }
  double& at(int x, int y) { return px[static_cast<std::size_t>(y) * w + x]; }
};

DImage multiply(const DImage& a, const DImage& b) {
  DImage out{a.w, a.h};
  for (std::size_t i = 0; i < out.px.size(); ++i) out.px[i] = a.px[i] * b.px[i];
  return out;
}

std::vector<double> gaussian_kernel(int n, double sd) {
  std::vector<double> k(static_cast<std::size_t>(n));
  const int c = n / 2;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = i - c;
    k[static_cast<std::size_t>(i)] = std::exp(-d * d / (2.0 * sd * sd));
    sum += k[static_cast<std::size_t>(i)];
  }
  for (auto& v : k) v /= sum;
  return k;
}

// Separable "valid"-region convolution: output shrinks by n-1 per axis,
// matching MATLAB filter2(..., 'valid') used in the reference VIFp code.
DImage filter_valid(const DImage& in, const std::vector<double>& k) {
  const int n = static_cast<int>(k.size());
  const int ow = in.w - n + 1;
  const int oh = in.h - n + 1;
  if (ow <= 0 || oh <= 0) return DImage{};
  DImage tmp{ow, in.h};
  for (int y = 0; y < in.h; ++y) {
    for (int x = 0; x < ow; ++x) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += k[static_cast<std::size_t>(i)] * in.at(x + i, y);
      tmp.at(x, y) = acc;
    }
  }
  DImage out{ow, oh};
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) acc += k[static_cast<std::size_t>(i)] * tmp.at(x, y + i);
      out.at(x, y) = acc;
    }
  }
  return out;
}

DImage downsample2(const DImage& in) {
  DImage out{(in.w + 1) / 2, (in.h + 1) / 2};
  for (int y = 0; y < out.h; ++y) {
    for (int x = 0; x < out.w; ++x) out.at(x, y) = in.at(x * 2, y * 2);
  }
  return out;
}

}  // namespace

double psnr(const Frame& reference, const Frame& distorted, double cap) {
  require_same_size(reference, distorted);
  const double mse = reference.mse(distorted);
  if (mse <= 1e-12) return cap;
  return std::min(cap, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double ssim(const Frame& reference, const Frame& distorted) {
  require_same_size(reference, distorted);
  constexpr int kWin = 8;
  constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
  constexpr double kC2 = (0.03 * 255) * (0.03 * 255);
  const int w = reference.width();
  const int h = reference.height();
  if (w < kWin || h < kWin) throw std::invalid_argument{"frame smaller than SSIM window"};

  double total = 0.0;
  std::int64_t windows = 0;
  for (int y0 = 0; y0 + kWin <= h; y0 += 2) {       // stride 2: dense enough,
    for (int x0 = 0; x0 + kWin <= w; x0 += 2) {     // 4x cheaper than stride 1
      double sum_a = 0, sum_b = 0, sum_aa = 0, sum_bb = 0, sum_ab = 0;
      for (int y = 0; y < kWin; ++y) {
        for (int x = 0; x < kWin; ++x) {
          const double a = reference.at(x0 + x, y0 + y);
          const double b = distorted.at(x0 + x, y0 + y);
          sum_a += a;
          sum_b += b;
          sum_aa += a * a;
          sum_bb += b * b;
          sum_ab += a * b;
        }
      }
      constexpr double kN = kWin * kWin;
      const double mu_a = sum_a / kN;
      const double mu_b = sum_b / kN;
      const double var_a = sum_aa / kN - mu_a * mu_a;
      const double var_b = sum_bb / kN - mu_b * mu_b;
      const double cov = sum_ab / kN - mu_a * mu_b;
      const double s = ((2 * mu_a * mu_b + kC1) * (2 * cov + kC2)) /
                       ((mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2));
      total += s;
      ++windows;
    }
  }
  return windows > 0 ? total / static_cast<double>(windows) : 0.0;
}

double vifp(const Frame& reference, const Frame& distorted) {
  require_same_size(reference, distorted);
  constexpr double kSigmaNsq = 2.0;  // HVS internal neural noise variance

  DImage ref{reference};
  DImage dist{distorted};
  double num = 0.0;
  double den = 0.0;

  for (int scale = 1; scale <= 4; ++scale) {
    const int n = (1 << (4 - scale + 1)) + 1;  // 17, 9, 5, 3
    const auto kernel = gaussian_kernel(n, static_cast<double>(n) / 5.0);
    if (scale > 1) {
      ref = downsample2(filter_valid(ref, kernel));
      dist = downsample2(filter_valid(dist, kernel));
      if (ref.w < n || ref.h < n) break;
    }
    const DImage mu1 = filter_valid(ref, kernel);
    const DImage mu2 = filter_valid(dist, kernel);
    const DImage rr = filter_valid(multiply(ref, ref), kernel);
    const DImage dd = filter_valid(multiply(dist, dist), kernel);
    const DImage rd = filter_valid(multiply(ref, dist), kernel);

    for (std::size_t i = 0; i < mu1.px.size(); ++i) {
      const double m1 = mu1.px[i];
      const double m2 = mu2.px[i];
      double sigma1_sq = rr.px[i] - m1 * m1;
      double sigma2_sq = dd.px[i] - m2 * m2;
      double sigma12 = rd.px[i] - m1 * m2;
      sigma1_sq = std::max(sigma1_sq, 0.0);
      sigma2_sq = std::max(sigma2_sq, 0.0);

      double g = sigma12 / (sigma1_sq + 1e-10);
      double sv_sq = sigma2_sq - g * sigma12;
      // Reference implementation's edge-case handling:
      if (sigma1_sq < 1e-10) {
        g = 0.0;
        sv_sq = sigma2_sq;
        sigma1_sq = 0.0;
      }
      if (sigma2_sq < 1e-10) {
        g = 0.0;
        sv_sq = 0.0;
      }
      if (g < 0.0) {
        sv_sq = sigma2_sq;
        g = 0.0;
      }
      sv_sq = std::max(sv_sq, 1e-10);
      num += std::log10(1.0 + g * g * sigma1_sq / (sv_sq + kSigmaNsq));
      den += std::log10(1.0 + sigma1_sq / kSigmaNsq);
    }
  }
  if (den <= 1e-12) return 1.0;  // blank reference: no information to lose
  return std::clamp(num / den, 0.0, 1.0);
}

VideoQoe video_qoe(const Frame& reference, const Frame& distorted) {
  return VideoQoe{psnr(reference, distorted), ssim(reference, distorted),
                  vifp(reference, distorted)};
}

VideoQoe mean_video_qoe(const std::vector<Frame>& reference, const std::vector<Frame>& distorted) {
  if (reference.size() != distorted.size() || reference.empty()) {
    throw std::invalid_argument{"sequences must be non-empty and equal length"};
  }
  VideoQoe acc;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const VideoQoe q = video_qoe(reference[i], distorted[i]);
    acc.psnr += q.psnr;
    acc.ssim += q.ssim;
    acc.vifp += q.vifp;
  }
  const auto n = static_cast<double>(reference.size());
  return VideoQoe{acc.psnr / n, acc.ssim / n, acc.vifp / n};
}

}  // namespace vc::media::qoe
