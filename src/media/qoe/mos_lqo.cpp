#include "media/qoe/mos_lqo.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vc::media::qoe {

Spectrogram spectrogram(const AudioSignal& signal, int bands, double frame_ms, double hop_ms,
                        double max_hz) {
  if (bands <= 0 || frame_ms <= 0 || hop_ms <= 0) throw std::invalid_argument{"bad spectrogram params"};
  const auto frame_len = static_cast<std::size_t>(signal.sample_rate * frame_ms / 1000.0);
  const auto hop = static_cast<std::size_t>(signal.sample_rate * hop_ms / 1000.0);
  Spectrogram spec;
  spec.bands = bands;
  if (frame_len == 0 || hop == 0 || signal.samples.size() < frame_len) return spec;

  // Precompute the Hann window.
  std::vector<double> window(frame_len);
  for (std::size_t i = 0; i < frame_len; ++i) {
    window[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                     static_cast<double>(frame_len - 1));
  }
  // Band center frequencies spaced on a mel-like (log) scale from 80 Hz.
  std::vector<double> centers(static_cast<std::size_t>(bands));
  const double f_lo = 80.0;
  for (int b = 0; b < bands; ++b) {
    centers[static_cast<std::size_t>(b)] =
        f_lo * std::pow(max_hz / f_lo, static_cast<double>(b) / (bands - 1));
  }

  for (std::size_t start = 0; start + frame_len <= signal.samples.size(); start += hop) {
    std::vector<double> powers(static_cast<std::size_t>(bands));
    for (int b = 0; b < bands; ++b) {
      // Goertzel-style single-bin DFT at the band center.
      const double f = centers[static_cast<std::size_t>(b)];
      const double w = 2.0 * std::numbers::pi * f / signal.sample_rate;
      double re = 0.0;
      double im = 0.0;
      for (std::size_t i = 0; i < frame_len; ++i) {
        const double v = window[i] * static_cast<double>(signal.samples[start + i]);
        re += v * std::cos(w * static_cast<double>(i));
        im -= v * std::sin(w * static_cast<double>(i));
      }
      powers[static_cast<std::size_t>(b)] = std::log10(1e-10 + re * re + im * im);
    }
    spec.frames.push_back(std::move(powers));
  }
  return spec;
}

double nsim(const Spectrogram& reference, const Spectrogram& degraded) {
  if (reference.bands != degraded.bands || reference.bands == 0) {
    throw std::invalid_argument{"spectrogram band mismatch"};
  }
  const std::size_t frames = std::min(reference.frames.size(), degraded.frames.size());
  if (frames == 0) return 0.0;
  const int bands = reference.bands;

  // SSIM-like similarity over 3×3 (time × band) patches of the log
  // spectrograms. Dynamic range of log10 power ~ 10; constants scaled to it.
  constexpr double kC1 = 0.01 * 10 * 0.01 * 10;
  constexpr double kC2 = 0.03 * 10 * 0.03 * 10;
  constexpr int kPatch = 3;
  double total = 0.0;
  std::int64_t n = 0;
  for (std::size_t t0 = 0; t0 + kPatch <= frames; ++t0) {
    for (int b0 = 0; b0 + kPatch <= bands; ++b0) {
      double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int dt = 0; dt < kPatch; ++dt) {
        for (int db = 0; db < kPatch; ++db) {
          const double a = reference.frames[t0 + static_cast<std::size_t>(dt)]
                                           [static_cast<std::size_t>(b0 + db)];
          const double b = degraded.frames[t0 + static_cast<std::size_t>(dt)]
                                          [static_cast<std::size_t>(b0 + db)];
          sa += a;
          sb += b;
          saa += a * a;
          sbb += b * b;
          sab += a * b;
        }
      }
      constexpr double kN = kPatch * kPatch;
      const double ma = sa / kN;
      const double mb = sb / kN;
      const double va = std::max(saa / kN - ma * ma, 0.0);
      const double vb = std::max(sbb / kN - mb * mb, 0.0);
      const double cov = sab / kN - ma * mb;
      // Luminance term on mean log-power, structure term on covariance.
      const double lum = (2 * ma * mb + kC1) / (ma * ma + mb * mb + kC1);
      const double str = (2 * cov + kC2) / (va + vb + kC2);
      total += std::clamp(lum * str, -1.0, 1.0);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  return std::clamp(total / static_cast<double>(n), 0.0, 1.0);
}

double nsim_to_mos(double nsim_value) {
  const double s = std::clamp(nsim_value, 0.0, 1.0);
  // Logistic: s=1 → ~4.75, s≈0.85 → ~4.1, s≈0.6 → ~2.6, s→0 → ~1.0.
  const double mos = 1.0 + 3.75 / (1.0 + std::exp(-10.0 * (s - 0.62)));
  return std::clamp(mos, 1.0, 5.0);
}

double mos_lqo(const AudioSignal& reference, const AudioSignal& degraded) {
  if (reference.sample_rate != degraded.sample_rate) {
    throw std::invalid_argument{"sample-rate mismatch"};
  }
  const auto ref_spec = spectrogram(reference);
  const auto deg_spec = spectrogram(degraded);
  return nsim_to_mos(nsim(ref_spec, deg_spec));
}

}  // namespace vc::media::qoe
