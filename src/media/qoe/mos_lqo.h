// Objective speech quality: MOS-LQO via spectro-temporal similarity, in the
// spirit of ViSQOL (the tool the paper uses in Section 4.4).
//
// Pipeline: both signals → log-power spectrograms (Hann-windowed short-time
// DFT, 30 ms frames / 15 ms hop, 32 bands up to 4 kHz) → NSIM (an SSIM-like
// neurogram similarity over spectrogram patches) → a monotone map onto the
// 1–5 MOS scale. ViSQOL proper fits the final map with a learned model; we
// use a fixed logistic calibrated so that identical audio ≈ 4.75 (ViSQOL's
// own ceiling in speech mode) and uncorrelated noise ≈ 1.
#pragma once

#include <vector>

#include "media/audio.h"

namespace vc::media::qoe {

/// A time × band log-power spectrogram.
struct Spectrogram {
  int bands = 0;
  std::vector<std::vector<double>> frames;  // frames[t][band]
};

Spectrogram spectrogram(const AudioSignal& signal, int bands = 32, double frame_ms = 30.0,
                        double hop_ms = 15.0, double max_hz = 4000.0);

/// Neurogram similarity in [0, 1] between two spectrograms (truncated to the
/// shorter of the two).
double nsim(const Spectrogram& reference, const Spectrogram& degraded);

/// Maps NSIM to the 1–5 MOS-LQO scale.
double nsim_to_mos(double nsim_value);

/// Full pipeline. Signals should be loudness-normalized and time-aligned
/// first (media/audio.h helpers).
double mos_lqo(const AudioSignal& reference, const AudioSignal& degraded);

}  // namespace vc::media::qoe
