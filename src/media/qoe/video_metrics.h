// Full-reference video quality metrics, as computed by the VQMT tool used in
// the paper (Section 4.3): PSNR, SSIM (Wang et al. 2004) and pixel-domain
// VIF (Sheikh & Bovik 2006). Each is a per-frame-pair score; session QoE is
// the mean over frames.
#pragma once

#include <vector>

#include "media/frame.h"

namespace vc::media::qoe {

/// Peak signal-to-noise ratio in dB. Identical frames map to `cap` (VQMT
/// caps at a large finite value rather than infinity).
double psnr(const Frame& reference, const Frame& distorted, double cap = 100.0);

/// Structural similarity index, mean over 8×8 windows, standard constants
/// (K1=0.01, K2=0.03, L=255). Range (-1, 1], 1 for identical.
double ssim(const Frame& reference, const Frame& distorted);

/// Pixel-domain Visual Information Fidelity (VIFp): a 4-scale pyramid; at
/// each scale, mutual-information ratios between perceived reference and
/// perceived distorted signals under a Gaussian channel model.
/// Range [0, 1] typically; 1 for identical.
double vifp(const Frame& reference, const Frame& distorted);

/// All three at once (shared setup), plus helpers for sequences.
struct VideoQoe {
  double psnr = 0.0;
  double ssim = 0.0;
  double vifp = 0.0;
};

VideoQoe video_qoe(const Frame& reference, const Frame& distorted);

/// Mean QoE across aligned frame pairs (sequences must be equal length).
VideoQoe mean_video_qoe(const std::vector<Frame>& reference, const std::vector<Frame>& distorted);

}  // namespace vc::media::qoe
