#include "media/dct8.h"

#include <cmath>
#include <numbers>

#if defined(__x86_64__) || defined(__i386__)
#define VC_DCT8_X86 1
#include <immintrin.h>
#endif

namespace vc::media {
namespace {

constexpr int kN = 8;

// Precomputed DCT-II basis, expression-for-expression the table the codec
// always used — kFwd[u*8+x] = a(u) * cos((2x+1) u pi / 16) — so every
// backend (and the scalar reference) reads identical bits.
struct Tables {
  alignas(32) double fwd[64];
  alignas(32) double fwd_t[64];  // fwd_t[x*8+u] = fwd[u*8+x]
  Tables() {
    for (int u = 0; u < kN; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / kN) : std::sqrt(2.0 / kN);
      for (int x = 0; x < kN; ++x) {
        fwd[u * kN + x] = a * std::cos((2 * x + 1) * u * std::numbers::pi / (2.0 * kN));
      }
    }
    for (int u = 0; u < kN; ++u) {
      for (int x = 0; x < kN; ++x) fwd_t[x * kN + u] = fwd[u * kN + x];
    }
  }
};
const Tables kT;

// ---------------------------------------------------------------------------
// The one primitive: out[l] = Σ_k s[k] · t[k*8 + l], k accumulated in order.
//
// Pass mapping (scalar loops on the left, primitive call on the right):
//   DCT  rows:  tmp[y][u] = Σ_x fwd[u][x]·in[y][x]   = mac8(in+y·8, fwd_t)
//   DCT  cols:  out[v][u] = Σ_y fwd[v][y]·tmp[y][u]  = mac8(fwd+v·8, tmp)
//   IDCT rows:  tmp[v][x] = Σ_u fwd[u][x]·in[v][u]   = mac8(in+v·8, fwd)
//   IDCT cols:  out[y][x] = Σ_v fwd[v][y]·tmp[v][x]  = mac8(fwd_t+y·8, tmp)
// In every case the scalar loop's per-output accumulation index becomes k
// and the free index becomes the lane, so per-lane arithmetic is unchanged.
// ---------------------------------------------------------------------------

inline void mac8_portable(const double* s, const double* t, double* out) {
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (int k = 0; k < kN; ++k) {
    const double sk = s[k];
    const double* row = t + k * kN;
    for (int l = 0; l < kN; ++l) acc[l] += sk * row[l];
  }
  for (int l = 0; l < kN; ++l) out[l] = acc[l];
}

void dct2d_portable(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int y = 0; y < kN; ++y) mac8_portable(in + y * kN, kT.fwd_t, tmp + y * kN);
  for (int v = 0; v < kN; ++v) mac8_portable(kT.fwd + v * kN, tmp, out + v * kN);
}

void idct2d_portable(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int v = 0; v < kN; ++v) mac8_portable(in + v * kN, kT.fwd, tmp + v * kN);
  for (int y = 0; y < kN; ++y) mac8_portable(kT.fwd_t + y * kN, tmp, out + y * kN);
}

#ifdef VC_DCT8_X86

inline void mac8_sse2(const double* s, const double* t, double* out) {
  __m128d a0 = _mm_setzero_pd();
  __m128d a1 = _mm_setzero_pd();
  __m128d a2 = _mm_setzero_pd();
  __m128d a3 = _mm_setzero_pd();
  for (int k = 0; k < kN; ++k) {
    const __m128d sk = _mm_set1_pd(s[k]);
    const double* row = t + k * kN;
    a0 = _mm_add_pd(a0, _mm_mul_pd(sk, _mm_loadu_pd(row + 0)));
    a1 = _mm_add_pd(a1, _mm_mul_pd(sk, _mm_loadu_pd(row + 2)));
    a2 = _mm_add_pd(a2, _mm_mul_pd(sk, _mm_loadu_pd(row + 4)));
    a3 = _mm_add_pd(a3, _mm_mul_pd(sk, _mm_loadu_pd(row + 6)));
  }
  _mm_storeu_pd(out + 0, a0);
  _mm_storeu_pd(out + 2, a1);
  _mm_storeu_pd(out + 4, a2);
  _mm_storeu_pd(out + 6, a3);
}

void dct2d_sse2(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int y = 0; y < kN; ++y) mac8_sse2(in + y * kN, kT.fwd_t, tmp + y * kN);
  for (int v = 0; v < kN; ++v) mac8_sse2(kT.fwd + v * kN, tmp, out + v * kN);
}

void idct2d_sse2(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int v = 0; v < kN; ++v) mac8_sse2(in + v * kN, kT.fwd, tmp + v * kN);
  for (int y = 0; y < kN; ++y) mac8_sse2(kT.fwd_t + y * kN, tmp, out + y * kN);
}

// AVX: 4 lanes per vector, two accumulators. Explicit mul+add — never
// _mm256_fmadd_pd — because the scalar reference (built for baseline x86-64,
// which has no FMA) rounds after the multiply; a fused path would produce
// different low bits and break the equality contract.
__attribute__((target("avx"))) inline void mac8_avx(const double* s, const double* t,
                                                    double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  for (int k = 0; k < kN; ++k) {
    const __m256d sk = _mm256_set1_pd(s[k]);
    const double* row = t + k * kN;
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(sk, _mm256_loadu_pd(row + 0)));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(sk, _mm256_loadu_pd(row + 4)));
  }
  _mm256_storeu_pd(out + 0, a0);
  _mm256_storeu_pd(out + 4, a1);
}

__attribute__((target("avx"))) void dct2d_avx(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int y = 0; y < kN; ++y) mac8_avx(in + y * kN, kT.fwd_t, tmp + y * kN);
  for (int v = 0; v < kN; ++v) mac8_avx(kT.fwd + v * kN, tmp, out + v * kN);
}

__attribute__((target("avx"))) void idct2d_avx(const double* in, double* out) {
  alignas(32) double tmp[64];
  for (int v = 0; v < kN; ++v) mac8_avx(in + v * kN, kT.fwd, tmp + v * kN);
  for (int y = 0; y < kN; ++y) mac8_avx(kT.fwd_t + y * kN, tmp, out + y * kN);
}

bool cpu_has_avx() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx") != 0;
}

#endif  // VC_DCT8_X86

void dct2d_scalar_impl(const double* in, double* out) {
  double tmp[64];
  for (int y = 0; y < kN; ++y) {
    for (int u = 0; u < kN; ++u) {
      double acc = 0.0;
      for (int x = 0; x < kN; ++x) acc += kT.fwd[u * kN + x] * in[y * kN + x];
      tmp[y * kN + u] = acc;
    }
  }
  for (int u = 0; u < kN; ++u) {
    for (int v = 0; v < kN; ++v) {
      double acc = 0.0;
      for (int y = 0; y < kN; ++y) acc += kT.fwd[v * kN + y] * tmp[y * kN + u];
      out[v * kN + u] = acc;
    }
  }
}

void idct2d_scalar_impl(const double* in, double* out) {
  double tmp[64];
  for (int v = 0; v < kN; ++v) {
    for (int x = 0; x < kN; ++x) {
      double acc = 0.0;
      for (int u = 0; u < kN; ++u) acc += kT.fwd[u * kN + x] * in[v * kN + u];
      tmp[v * kN + x] = acc;
    }
  }
  for (int x = 0; x < kN; ++x) {
    for (int y = 0; y < kN; ++y) {
      double acc = 0.0;
      for (int v = 0; v < kN; ++v) acc += kT.fwd[v * kN + y] * tmp[v * kN + x];
      out[y * kN + x] = acc;
    }
  }
}

using TransformFn = void (*)(const double*, double*);

// Constant-initialized to the scalar reference so a caller running during
// another TU's static initialization still gets correct (identical) bits;
// the dynamic initializer below upgrades the dispatch to the best ISA.
TransformFn g_dct2d = &dct2d_scalar_impl;
TransformFn g_idct2d = &idct2d_scalar_impl;
DctBackend g_backend = DctBackend::kScalar;

[[maybe_unused]] const bool g_dispatch_init = [] {
  set_dct_backend(best_dct_backend());
  return true;
}();

}  // namespace

DctBackend active_dct_backend() { return g_backend; }

const char* dct_backend_name(DctBackend backend) {
  switch (backend) {
    case DctBackend::kScalar: return "scalar";
    case DctBackend::kPortable: return "portable-lanes";
    case DctBackend::kSse2: return "sse2";
    case DctBackend::kAvx: return "avx";
  }
  return "?";
}

bool dct_backend_available(DctBackend backend) {
  switch (backend) {
    case DctBackend::kScalar:
    case DctBackend::kPortable:
      return true;
    case DctBackend::kSse2:
#ifdef VC_DCT8_X86
      return true;
#else
      return false;
#endif
    case DctBackend::kAvx:
#ifdef VC_DCT8_X86
      return cpu_has_avx();
#else
      return false;
#endif
  }
  return false;
}

bool set_dct_backend(DctBackend backend) {
  if (!dct_backend_available(backend)) return false;
  switch (backend) {
    case DctBackend::kScalar:
      g_dct2d = &dct2d_scalar_impl;
      g_idct2d = &idct2d_scalar_impl;
      break;
    case DctBackend::kPortable:
      g_dct2d = &dct2d_portable;
      g_idct2d = &idct2d_portable;
      break;
#ifdef VC_DCT8_X86
    case DctBackend::kSse2:
      g_dct2d = &dct2d_sse2;
      g_idct2d = &idct2d_sse2;
      break;
    case DctBackend::kAvx:
      g_dct2d = &dct2d_avx;
      g_idct2d = &idct2d_avx;
      break;
#else
    default:
      return false;
#endif
  }
  g_backend = backend;
  return true;
}

DctBackend best_dct_backend() {
#ifdef VC_DCT8_X86
  return cpu_has_avx() ? DctBackend::kAvx : DctBackend::kSse2;
#else
  return DctBackend::kPortable;
#endif
}

void dct2d_8x8(const double* in, double* out) { g_dct2d(in, out); }
void idct2d_8x8(const double* in, double* out) { g_idct2d(in, out); }
void dct2d_8x8_scalar(const double* in, double* out) { dct2d_scalar_impl(in, out); }
void idct2d_8x8_scalar(const double* in, double* out) { idct2d_scalar_impl(in, out); }

}  // namespace vc::media
