#include "media/feeds.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace vc::media {
namespace {

// Deterministic 2D hash noise in [0, 255].
std::uint8_t hash_noise(std::uint64_t seed, int x, int y) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return static_cast<std::uint8_t>(h & 0xFF);
}

// Smooth value noise: bilinear interpolation of lattice hash noise at a
// given cell size. Produces natural-looking low-frequency texture.
double value_noise(std::uint64_t seed, double x, double y, double cell) {
  const double gx = x / cell;
  const double gy = y / cell;
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const double fx = gx - x0;
  const double fy = gy - y0;
  const double sx = fx * fx * (3 - 2 * fx);  // smoothstep
  const double sy = fy * fy * (3 - 2 * fy);
  const double v00 = hash_noise(seed, x0, y0);
  const double v10 = hash_noise(seed, x0 + 1, y0);
  const double v01 = hash_noise(seed, x0, y0 + 1);
  const double v11 = hash_noise(seed, x0 + 1, y0 + 1);
  return (v00 * (1 - sx) + v10 * sx) * (1 - sy) + (v01 * (1 - sx) + v11 * sx) * sy;
}

// Two-octave fractal noise, range ~[0, 255].
double fractal_noise(std::uint64_t seed, double x, double y, double cell) {
  return 0.7 * value_noise(seed, x, y, cell) + 0.3 * value_noise(seed ^ 0xABCD, x, y, cell / 3.0);
}

void fill_ellipse(Frame& f, double cx, double cy, double rx, double ry, std::uint8_t luma) {
  const int x_lo = std::max(0, static_cast<int>(cx - rx) - 1);
  const int x_hi = std::min(f.width() - 1, static_cast<int>(cx + rx) + 1);
  const int y_lo = std::max(0, static_cast<int>(cy - ry) - 1);
  const int y_hi = std::min(f.height() - 1, static_cast<int>(cy + ry) + 1);
  for (int y = y_lo; y <= y_hi; ++y) {
    for (int x = x_lo; x <= x_hi; ++x) {
      const double dx = (x - cx) / rx;
      const double dy = (y - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) f.set(x, y, luma);
    }
  }
}

// Deterministic sensor noise: zero-mean uniform with std-dev sigma, keyed by
// (seed, frame index, pixel).
void apply_sensor_noise(Frame& f, std::uint64_t seed, std::int64_t index, double sigma) {
  if (sigma <= 0.0) return;
  const double half_range = sigma * 1.7320508;  // uniform(-a, a) has sd a/sqrt(3)
  const std::uint64_t frame_seed = seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(index + 1));
  for (int y = 0; y < f.height(); ++y) {
    for (int x = 0; x < f.width(); ++x) {
      const double u = (hash_noise(frame_seed, x, y) - 127.5) / 127.5;
      const double v = f.at(x, y) + u * half_range;
      f.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- TalkingHead

TalkingHeadFeed::TalkingHeadFeed(FeedParams params) : p_(params), background_(p_.width, p_.height) {
  // Indoor wall: smooth low-frequency texture plus a darker "bookshelf" band.
  for (int y = 0; y < p_.height; ++y) {
    for (int x = 0; x < p_.width; ++x) {
      double v = 90.0 + 0.25 * fractal_noise(p_.seed, x, y, 48.0);
      if (x > p_.width * 3 / 4) v *= 0.7;  // shelf on the right
      background_.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
}

Frame TalkingHeadFeed::frame_at(std::int64_t index) const {
  if (index < 0) throw std::invalid_argument{"negative frame index"};
  Frame f = background_;
  const double t = static_cast<double>(index) / p_.fps;
  const double cx = p_.width / 2.0 + 1.5 * std::sin(2.0 * std::numbers::pi * 0.25 * t);
  const double head_cy = p_.height * 0.38 + 1.0 * std::sin(2.0 * std::numbers::pi * 0.4 * t);
  const double head_r = p_.height * 0.16;

  // Torso.
  fill_ellipse(f, cx, p_.height * 0.85, p_.width * 0.22, p_.height * 0.30, 60);
  // Head.
  fill_ellipse(f, cx, head_cy, head_r * 0.8, head_r, 180);
  // Eyes (blink every ~4 s).
  const bool blink = std::fmod(t, 4.0) < 0.15;
  if (!blink) {
    fill_ellipse(f, cx - head_r * 0.35, head_cy - head_r * 0.2, head_r * 0.1, head_r * 0.07, 30);
    fill_ellipse(f, cx + head_r * 0.35, head_cy - head_r * 0.2, head_r * 0.1, head_r * 0.07, 30);
  }
  // Mouth: opens and closes while "talking" (syllable rate ~3 Hz).
  const double mouth_open = 0.5 + 0.5 * std::sin(2.0 * std::numbers::pi * 3.0 * t);
  fill_ellipse(f, cx, head_cy + head_r * 0.5, head_r * 0.3, head_r * (0.05 + 0.12 * mouth_open), 40);
  // Occasional hand gesture: a raised hand for ~1 s every ~7 s.
  const double phase = std::fmod(t, 7.0);
  if (phase < 1.0) {
    const double lift = std::sin(std::numbers::pi * phase);  // raise then lower
    fill_ellipse(f, cx + p_.width * 0.25, p_.height * (0.8 - 0.25 * lift), p_.width * 0.05,
                 p_.height * 0.06, 170);
  }
  apply_sensor_noise(f, p_.seed, index, p_.sensor_noise_sigma);
  return f;
}

// ------------------------------------------------------------------ TourGuide

TourGuideFeed::TourGuideFeed(FeedParams params) : p_(params) {}

Frame TourGuideFeed::frame_at(std::int64_t index) const {
  if (index < 0) throw std::invalid_argument{"negative frame index"};
  Frame f{p_.width, p_.height};
  const double t = static_cast<double>(index) / p_.fps;
  const auto scene = static_cast<std::uint64_t>(t / scene_change_period_sec_);
  const std::uint64_t scene_seed = p_.seed ^ (scene * 0x9E3779B97F4A7C15ULL + 17);

  // Camera pans briskly; a full scene change re-seeds the texture. The
  // texture has fine detail (small cells): panning shifts it by sub-block
  // amounts every frame, so inter residuals carry real structure — the
  // reason high-motion content is expensive per bit (Finding 3).
  const double pan_x = 85.0 * t;
  const double pan_y = 12.0 * std::sin(2.0 * std::numbers::pi * 0.3 * t);
  for (int y = 0; y < p_.height; ++y) {
    for (int x = 0; x < p_.width; ++x) {
      const double v = fractal_noise(scene_seed, x + pan_x, y + pan_y, 9.0);
      f.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  // Moving foreground objects (pedestrians/vehicles) crossing the view.
  Rng obj_rng{scene_seed ^ 0x5151};
  for (int i = 0; i < 8; ++i) {
    const double speed = obj_rng.uniform(30.0, 90.0) * (obj_rng.chance(0.5) ? 1.0 : -1.0);
    const double y0 = obj_rng.uniform(0.2, 0.9) * p_.height;
    const double r = obj_rng.uniform(0.03, 0.08) * p_.height;
    const double scene_t = t - static_cast<double>(scene) * scene_change_period_sec_;
    double x0 = obj_rng.uniform(0.0, 1.0) * p_.width + speed * scene_t;
    x0 = std::fmod(std::fmod(x0, p_.width) + p_.width, p_.width);
    const auto luma = static_cast<std::uint8_t>(obj_rng.uniform_int(20, 235));
    fill_ellipse(f, x0, y0, r * 1.5, r, luma);
  }
  apply_sensor_noise(f, p_.seed, index, p_.sensor_noise_sigma);
  return f;
}

// ---------------------------------------------------------------------- Flash

FlashFeed::FlashFeed(FeedParams params, double period_sec, int flash_frames)
    : p_(params), period_sec_(period_sec), flash_frames_(flash_frames) {
  if (period_sec <= 0 || flash_frames <= 0) throw std::invalid_argument{"bad flash parameters"};
}

bool FlashFeed::is_flash_frame(std::int64_t index) const {
  const auto period_frames = static_cast<std::int64_t>(period_sec_ * p_.fps + 0.5);
  return index % period_frames < flash_frames_;
}

Frame FlashFeed::frame_at(std::int64_t index) const {
  if (index < 0) throw std::invalid_argument{"negative frame index"};
  if (!is_flash_frame(index)) return Frame{p_.width, p_.height, 16};
  // A photo-like image (checker + fine texture): its coded size is several
  // KB, producing the unmistakable burst of big packets on the wire that
  // the lag detector keys on (Fig 2).
  Frame f{p_.width, p_.height};
  for (int y = 0; y < p_.height; ++y) {
    for (int x = 0; x < p_.width; ++x) {
      const bool check = ((x / 12) + (y / 12)) % 2 == 0;
      const double texture = 0.5 * value_noise(p_.seed ^ 0xF1A5, x, y, 5.0);
      const double v = (check ? 200.0 : 60.0) + texture - 64.0;
      f.set(x, y, static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return f;
}

// ---------------------------------------------------------------------- Blank

BlankFeed::BlankFeed(FeedParams params) : p_(params) {}

Frame BlankFeed::frame_at(std::int64_t index) const {
  if (index < 0) throw std::invalid_argument{"negative frame index"};
  return Frame{p_.width, p_.height, 16};
}

// --------------------------------------------------------------------- Padded

PaddedFeed::PaddedFeed(std::shared_ptr<const VideoFeed> inner, int pad, std::uint8_t pad_luma)
    : inner_(std::move(inner)), pad_(pad), pad_luma_(pad_luma) {
  if (!inner_) throw std::invalid_argument{"null inner feed"};
  if (pad_ < 0) throw std::invalid_argument{"negative padding"};
}

Frame PaddedFeed::frame_at(std::int64_t index) const {
  const Frame inner = inner_->frame_at(index);
  Frame out{width(), height(), pad_luma_};
  for (int y = 0; y < inner.height(); ++y) {
    for (int x = 0; x < inner.width(); ++x) {
      out.set(x + pad_, y + pad_, inner.at(x, y));
    }
  }
  return out;
}

// --------------------------------------------------------------------- motion

double mean_motion(const VideoFeed& feed, std::int64_t frames) {
  if (frames < 2) throw std::invalid_argument{"need at least two frames"};
  double acc = 0.0;
  Frame prev = feed.frame_at(0);
  for (std::int64_t i = 1; i < frames; ++i) {
    Frame cur = feed.frame_at(i);
    double diff = 0.0;
    for (std::size_t k = 0; k < cur.size(); ++k) {
      diff += std::abs(static_cast<int>(cur.data()[k]) - static_cast<int>(prev.data()[k]));
    }
    acc += diff / static_cast<double>(cur.size());
    prev = std::move(cur);
  }
  return acc / static_cast<double>(frames - 1);
}

}  // namespace vc::media
