// Token-bucket traffic shaper — the simulator's analog of the paper's
// tc/ifb ingress rate limiting (Section 4.4). Packets exceeding the rate are
// queued up to a packet limit (like tc's pfifo, whose limit is in packets —
// which matters: audio packets get no small-size advantage at a congested
// queue), then tail-dropped; that is what starves the video decoder and
// produces the QoE cliffs of Figs 17–18.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include <string>

#include "common/metrics.h"
#include "common/tracer.h"
#include "common/units.h"
#include "net/event_loop.h"
#include "net/packet.h"

namespace vc::net {

class TokenBucketShaper {
 public:
  struct Stats {
    std::int64_t forwarded_packets = 0;
    std::int64_t forwarded_bytes = 0;
    std::int64_t dropped_packets = 0;
    std::int64_t dropped_bytes = 0;
    SimDuration max_queue_delay{};
  };

  /// `rate`: drain rate; `burst_bytes`: bucket depth; `queue_limit_packets`:
  /// backlog beyond which packets are tail-dropped (tc pfifo semantics).
  TokenBucketShaper(EventLoop& loop, DataRate rate, std::int64_t burst_bytes = 16'000,
                    std::size_t queue_limit_packets = 100);
  ~TokenBucketShaper();
  TokenBucketShaper(const TokenBucketShaper&) = delete;
  TokenBucketShaper& operator=(const TokenBucketShaper&) = delete;

  /// Submits a packet; `deliver` runs when (and if) the packet clears the
  /// shaper. Delivery order is FIFO.
  void submit(Packet pkt, std::function<void(Packet)> deliver);

  void set_rate(DataRate rate);
  DataRate rate() const { return rate_; }

  /// Outage switch: while down, every submitted packet is dropped (counted
  /// in the drop stats, like a tail drop) and the backlog keeps waiting for
  /// tokens that only flow again after `set_down(false)`. One branch on the
  /// fast path when up — the fault subsystem's "link dead" primitive.
  void set_down(bool down);
  bool is_down() const { return down_; }

  const Stats& stats() const { return stats_; }

  /// Mirrors forward/drop accounting into `<prefix>.forwarded_packets`,
  /// `<prefix>.forwarded_bytes`, `<prefix>.dropped_packets` and
  /// `<prefix>.dropped_bytes` counters plus a `<prefix>.queue_delay_ms`
  /// histogram. The registry must outlive the shaper.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "shaper");

  /// Flight-recorder hook (borrowed; nullptr detaches): backlog state changes
  /// become a `shaper.backlog_pkts` counter track, tail drops a `shaper.drop`
  /// instant, and each queued-then-forwarded packet a `shaper.queue` span
  /// from enqueue to drain (value = wire bytes).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  std::size_t backlog_packets() const { return queue_.size(); }
  std::int64_t backlog_bytes() const { return queued_bytes_; }

 private:
  struct Queued {
    Packet pkt;
    std::function<void(Packet)> deliver;
    SimTime enqueued_at;
  };

  void refill();
  void drain();
  void schedule_drain();
  /// Effective bucket depth: at least one max-size packet must fit, or a
  /// packet larger than the burst could never be served (tc requires
  /// burst >= MTU for the same reason).
  double bucket_cap() const {
    return static_cast<double>(std::max(burst_bytes_, max_packet_bytes_));
  }

  EventLoop& loop_;
  DataRate rate_;
  double bucket_bytes_;          // current tokens, in bytes
  std::int64_t burst_bytes_;
  std::int64_t max_packet_bytes_ = 0;
  std::size_t queue_limit_packets_;
  std::int64_t queued_bytes_ = 0;
  SimTime last_refill_;
  std::deque<Queued> queue_;
  bool down_ = false;
  bool drain_scheduled_ = false;
  EventId drain_event_ = 0;
  Stats stats_;
  // Optional metrics hooks (resolved once; see MetricsRegistry reference
  // stability guarantee).
  MetricsRegistry::Counter* m_forwarded_packets_ = nullptr;
  MetricsRegistry::Counter* m_forwarded_bytes_ = nullptr;
  MetricsRegistry::Counter* m_dropped_packets_ = nullptr;
  MetricsRegistry::Counter* m_dropped_bytes_ = nullptr;
  MetricsRegistry::Histogram* m_queue_delay_ms_ = nullptr;
  MetricsRegistry::Gauge* m_backlog_pkts_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::net
