// A host on the simulated internet: a cloud VM, a relay server, or a phone.
//
// Hosts own UDP sockets, an optional ingress shaper (the tc/ifb analog), and
// packet taps — the attachment point for the tcpdump-like capture in
// src/capture.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geo.h"
#include "common/metrics.h"
#include "net/packet.h"
#include "net/loss.h"
#include "net/shaper.h"

namespace vc::net {

class Network;
class Host;

/// Traffic direction relative to the host a tap is attached to.
enum class Direction : std::uint8_t { kOutgoing = 0, kIncoming = 1 };

/// Observes packets crossing a host's interface, like tcpdump.
using PacketTap = std::function<void(Direction, const Packet&, SimTime)>;

/// An open delivery batch: all packets bound for one host at one simulated
/// microsecond, riding a single scheduled event (see network.h). The event
/// closure holds shared ownership; `sealed` flips when it fires so handlers
/// running at that tick can't append to a batch already being drained.
struct DeliveryBatch {
  std::vector<Packet> packets;
  bool sealed = false;
};

/// A bound UDP socket. Created via Host::udp_bind; destroyed with the host
/// or via Host::udp_close.
class UdpSocket {
 public:
  using Handler = std::function<void(const Packet&)>;

  UdpSocket(Host& host, std::uint16_t port) : host_(host), port_(port) {}
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const { return port_; }
  Endpoint local_endpoint() const;

  /// Registers the receive callback; replaces any previous one.
  void on_receive(Handler h) { handler_ = std::move(h); }

  /// Sends a datagram. `pkt.src` is filled in from this socket; `pkt.dst`
  /// must be set by the caller.
  void send(Packet pkt);

  /// Convenience: sends a datagram with just a destination and L7 length.
  void send_to(const Endpoint& dst, std::int64_t l7_len, StreamKind kind = StreamKind::kUnknown,
               std::uint64_t seq = 0);

 private:
  friend class Host;
  Host& host_;
  std::uint16_t port_;
  Handler handler_;
};

class Host {
 public:
  Host(Network& network, std::string name, GeoPoint location, IpAddr ip);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  const GeoPoint& location() const { return location_; }
  IpAddr ip() const { return ip_; }
  Network& network() { return network_; }

  /// Binds a UDP socket on `port` (throws if taken). Port 0 picks an
  /// ephemeral port, as Zoom's P2P mode does.
  UdpSocket& udp_bind(std::uint16_t port = 0);
  void udp_close(std::uint16_t port);
  UdpSocket* udp_socket(std::uint16_t port);

  /// Installs/clears the ingress shaper (tc/ifb analog). Shaped packets are
  /// tapped *after* shaping: analysis sees what the client actually receives.
  void set_ingress_shaper(std::unique_ptr<TokenBucketShaper> shaper);
  TokenBucketShaper* ingress_shaper() { return ingress_shaper_.get(); }

  /// Last-mile ingress loss (e.g. bursty WiFi); applied before the shaper.
  void set_ingress_loss(std::unique_ptr<LossModel> loss) { ingress_loss_ = std::move(loss); }
  std::int64_t ingress_losses() const { return ingress_losses_; }

  /// Attaches a capture tap; returns an id usable with remove_tap.
  std::uint64_t add_tap(PacketTap tap);
  void remove_tap(std::uint64_t id);

  /// Packets addressed to a port with no socket (counted, then discarded).
  std::int64_t unroutable_packets() const { return unroutable_; }

  /// Packets scheduled toward this host but not yet handed to deliver():
  /// the propagation-pipe queue depth of the host's inbound link. The
  /// ingress shaper's backlog (if any) sits behind this.
  std::int64_t in_flight_packets() const { return in_flight_; }

  /// Registers the `<prefix>.in_flight_pkts` queue-depth gauge. Called by
  /// Network::wire_link_observability; every host gets one, shaped or not.
  void attach_link_metrics(MetricsRegistry& registry, const std::string& prefix);

  // --- used by Network ---
  void notify_sent(const Packet& pkt);
  void deliver(Packet pkt);

 private:
  friend class Network;

  void dispatch(Packet pkt);
  void run_taps(Direction dir, const Packet& pkt);

  void link_enqueued() {
    ++in_flight_;
    if (m_in_flight_pkts_ != nullptr) m_in_flight_pkts_->set(static_cast<double>(in_flight_));
  }
  void link_drained(std::size_t n) {
    in_flight_ -= static_cast<std::int64_t>(n);
    if (m_in_flight_pkts_ != nullptr) m_in_flight_pkts_->set(static_cast<double>(in_flight_));
  }

  // Most recently opened inbound delivery batch, kept inline so Network's
  // send path needs no hash lookup. -1 tick = no batch ever opened.
  std::shared_ptr<DeliveryBatch> open_batch_;
  std::int64_t open_batch_tick_ = -1;

  Network& network_;
  std::string name_;
  GeoPoint location_;
  IpAddr ip_;
  std::unordered_map<std::uint16_t, std::unique_ptr<UdpSocket>> sockets_;
  std::unique_ptr<TokenBucketShaper> ingress_shaper_;
  std::unique_ptr<LossModel> ingress_loss_;
  std::int64_t ingress_losses_ = 0;
  std::vector<std::pair<std::uint64_t, PacketTap>> taps_;
  std::uint64_t next_tap_id_ = 1;
  std::uint16_t next_ephemeral_ = 32768;
  std::int64_t unroutable_ = 0;
  std::int64_t in_flight_ = 0;
  MetricsRegistry::Gauge* m_in_flight_pkts_ = nullptr;
};

}  // namespace vc::net
