#include "net/shaper.h"

#include <algorithm>
#include <utility>

namespace vc::net {

TokenBucketShaper::TokenBucketShaper(EventLoop& loop, DataRate rate, std::int64_t burst_bytes,
                                     std::size_t queue_limit_packets)
    : loop_(loop),
      rate_(rate),
      bucket_bytes_(static_cast<double>(burst_bytes)),
      burst_bytes_(burst_bytes),
      queue_limit_packets_(queue_limit_packets),
      last_refill_(loop.now()) {}

TokenBucketShaper::~TokenBucketShaper() {
  // A scheduled drain would dangle once we're gone.
  if (drain_scheduled_) loop_.cancel(drain_event_);
}

void TokenBucketShaper::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_forwarded_packets_ = &registry.counter(prefix + ".forwarded_packets");
  m_forwarded_bytes_ = &registry.counter(prefix + ".forwarded_bytes");
  m_dropped_packets_ = &registry.counter(prefix + ".dropped_packets");
  m_dropped_bytes_ = &registry.counter(prefix + ".dropped_bytes");
  m_queue_delay_ms_ = &registry.histogram(prefix + ".queue_delay_ms");
  m_backlog_pkts_ = &registry.gauge(prefix + ".backlog_pkts");
  m_backlog_pkts_->set(static_cast<double>(queue_.size()));
}

void TokenBucketShaper::set_rate(DataRate rate) {
  refill();  // settle tokens at the old rate first
  rate_ = rate;
  // Re-plan any pending drain: its wakeup was computed at the old rate.
  if (drain_scheduled_) {
    loop_.cancel(drain_event_);
    drain_scheduled_ = false;
  }
  if (!queue_.empty()) schedule_drain();
}

void TokenBucketShaper::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down_) {
    // Freeze the link: nothing drains until it comes back up. Tokens banked
    // before the outage are forfeited too — otherwise recovery starts with a
    // full pre-outage bucket on top of the restarted refill clock and the
    // first post-recovery burst can exceed the configured burst size.
    bucket_bytes_ = 0.0;
    if (drain_scheduled_) {
      loop_.cancel(drain_event_);
      drain_scheduled_ = false;
    }
    return;
  }
  // Back up. Tokens must not have accrued over the outage — a dead link
  // earns no transmission credit — so restart the refill clock at now.
  last_refill_ = loop_.now();
  if (!queue_.empty()) schedule_drain();
}

void TokenBucketShaper::refill() {
  const SimDuration elapsed = loop_.now() - last_refill_;
  last_refill_ = loop_.now();
  if (rate_.is_unlimited()) {
    bucket_bytes_ = bucket_cap();
    return;
  }
  bucket_bytes_ += static_cast<double>(rate_.bits_per_second()) / 8.0 * elapsed.seconds();
  bucket_bytes_ = std::min(bucket_bytes_, bucket_cap());
}

void TokenBucketShaper::submit(Packet pkt, std::function<void(Packet)> deliver) {
  const std::int64_t size = pkt.wire_len();
  max_packet_bytes_ = std::max(max_packet_bytes_, size);
  if (down_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += size;
    if (m_dropped_packets_) {
      m_dropped_packets_->inc();
      m_dropped_bytes_->add(size);
    }
    if (tracer_ != nullptr) tracer_->instant("shaper.drop", loop_.now(), static_cast<double>(size));
    return;
  }
  refill();
  if (queue_.empty() && (rate_.is_unlimited() || bucket_bytes_ >= static_cast<double>(size))) {
    bucket_bytes_ -= static_cast<double>(size);
    ++stats_.forwarded_packets;
    stats_.forwarded_bytes += size;
    if (m_forwarded_packets_) {
      m_forwarded_packets_->inc();
      m_forwarded_bytes_->add(size);
      m_queue_delay_ms_->observe(0.0);
    }
    deliver(std::move(pkt));
    return;
  }
  if (queue_.size() >= queue_limit_packets_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += size;
    if (m_dropped_packets_) {
      m_dropped_packets_->inc();
      m_dropped_bytes_->add(size);
    }
    if (tracer_ != nullptr) tracer_->instant("shaper.drop", loop_.now(), static_cast<double>(size));
    return;
  }
  queued_bytes_ += size;
  queue_.push_back(Queued{std::move(pkt), std::move(deliver), loop_.now()});
  if (m_backlog_pkts_) m_backlog_pkts_->set(static_cast<double>(queue_.size()));
  if (tracer_ != nullptr) {
    tracer_->counter("shaper.backlog_pkts", loop_.now(), static_cast<double>(queue_.size()));
  }
  schedule_drain();
}

void TokenBucketShaper::schedule_drain() {
  if (drain_scheduled_ || queue_.empty() || down_) return;
  refill();
  const std::int64_t head = queue_.front().pkt.wire_len();
  SimDuration wait = SimDuration::zero();
  if (!rate_.is_unlimited() && bucket_bytes_ < static_cast<double>(head)) {
    const double deficit = static_cast<double>(head) - bucket_bytes_;
    const double sec = deficit * 8.0 / static_cast<double>(rate_.bits_per_second());
    wait = seconds_f(sec) + micros(1);
  }
  drain_scheduled_ = true;
  drain_event_ = loop_.schedule_after(wait, [this] {
    drain_scheduled_ = false;
    drain();
  });
}

void TokenBucketShaper::drain() {
  refill();
  while (!queue_.empty()) {
    const std::int64_t size = queue_.front().pkt.wire_len();
    if (!rate_.is_unlimited() && bucket_bytes_ < static_cast<double>(size)) break;
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= size;
    bucket_bytes_ -= static_cast<double>(size);
    ++stats_.forwarded_packets;
    stats_.forwarded_bytes += size;
    stats_.max_queue_delay = std::max(stats_.max_queue_delay, loop_.now() - q.enqueued_at);
    if (m_forwarded_packets_) {
      m_forwarded_packets_->inc();
      m_forwarded_bytes_->add(size);
      m_queue_delay_ms_->observe((loop_.now() - q.enqueued_at).millis());
    }
    if (tracer_ != nullptr) {
      tracer_->span("shaper.queue", q.enqueued_at, loop_.now(), static_cast<double>(size));
    }
    q.deliver(std::move(q.pkt));
  }
  if (m_backlog_pkts_) m_backlog_pkts_->set(static_cast<double>(queue_.size()));
  if (tracer_ != nullptr) {
    tracer_->counter("shaper.backlog_pkts", loop_.now(), static_cast<double>(queue_.size()));
  }
  if (!queue_.empty()) schedule_drain();
}

}  // namespace vc::net
