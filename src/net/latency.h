// One-way delay models for the simulated internet.
//
// The paper's lag findings (Figs 4–11) are driven by geography: relays in
// US-east penalize US-west and European clients by roughly the propagation
// delta. GeoLatencyModel reproduces that geometry; FixedLatencyModel supports
// unit tests with exact, hand-chosen delays.
#pragma once

#include <memory>
#include <unordered_map>
#include <utility>

#include "common/geo.h"
#include "common/rng.h"
#include "common/time.h"

namespace vc::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// Samples the one-way delay for a single packet between two locations.
  virtual SimDuration one_way(const GeoPoint& from, const GeoPoint& to, Rng& rng) const = 0;
  /// Deterministic expected delay (no jitter), used by infrastructure
  /// placement policies that "know" topology, never by measurement code.
  virtual SimDuration expected_one_way(const GeoPoint& from, const GeoPoint& to) const = 0;
};

/// Great-circle propagation with routing inflation, a distance-independent
/// base (last-mile + processing), and additive positive jitter.
class GeoLatencyModel final : public LatencyModel {
 public:
  struct Params {
    double inflation = 1.8;               // routing stretch over great circle
    SimDuration base = millis_f(1.0);     // per-path fixed overhead
    double jitter_mean_ms = 0.3;          // exponential jitter mean
  };

  GeoLatencyModel();  // defaults; defined below (Params incomplete here)
  explicit GeoLatencyModel(Params p) : p_(p) {}

  SimDuration one_way(const GeoPoint& from, const GeoPoint& to, Rng& rng) const override {
    return expected_one_way(from, to) + millis_f(rng.exponential(p_.jitter_mean_ms));
  }

  SimDuration expected_one_way(const GeoPoint& from, const GeoPoint& to) const override {
    return propagation_delay(from, to, p_.inflation, p_.base);
  }

  const Params& params() const { return p_; }

 private:
  Params p_;
};

inline GeoLatencyModel::GeoLatencyModel() : p_(Params{}) {}

/// Constant delay regardless of location; for tests.
class FixedLatencyModel final : public LatencyModel {
 public:
  explicit FixedLatencyModel(SimDuration d) : d_(d) {}
  SimDuration one_way(const GeoPoint&, const GeoPoint&, Rng&) const override { return d_; }
  SimDuration expected_one_way(const GeoPoint&, const GeoPoint&) const override { return d_; }

 private:
  SimDuration d_;
};

}  // namespace vc::net
