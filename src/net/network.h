// The simulated internet: hosts + a latency model + loss.
//
// There are no modeled core-link bandwidth constraints — the paper's cloud
// VMs have multi-Gbps connectivity, so the bottlenecks that matter are the
// artificial ingress caps (Section 4.4), modeled per-host by shapers.
//
// Delivery is batched: all packets bound for the same host at the same
// simulated microsecond ride one scheduled event carrying a vector of
// packets, instead of one event (and one closure) per packet. Arrival times
// and per-destination arrival order are exactly what per-packet scheduling
// produced; only the number of heap operations changes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "net/event_loop.h"
#include "net/host.h"
#include "net/latency.h"
#include "net/loss.h"
#include "net/packet.h"

namespace vc::net {

class Network {
 public:
  struct Stats {
    std::int64_t packets_sent = 0;
    std::int64_t packets_delivered = 0;
    std::int64_t packets_lost = 0;
    std::int64_t packets_unroutable = 0;
    std::int64_t bytes_sent = 0;
    /// Scheduled delivery events; packets_delivered / delivery_batches is the
    /// measured coalescing factor.
    std::int64_t delivery_batches = 0;
  };

  Network(std::unique_ptr<LatencyModel> latency, std::uint64_t seed);

  EventLoop& loop() { return loop_; }
  const EventLoop& loop() const { return loop_; }
  SimTime now() const { return loop_.now(); }
  const LatencyModel& latency() const { return *latency_; }
  Rng& rng() { return rng_; }

  /// Creates a host with an auto-assigned 10.x.x.x address.
  Host& add_host(std::string name, GeoPoint location);
  Host* host(IpAddr ip);
  const std::vector<std::unique_ptr<Host>>& hosts() const { return hosts_; }

  /// Global independent packet-loss probability (0 by default: the paper's
  /// cloud paths are clean; loss experiments set this explicitly).
  void set_loss_probability(double p) {
    loss_ = p > 0.0 ? std::make_unique<BernoulliLoss>(p) : nullptr;
  }
  /// Arbitrary core loss model (e.g. Gilbert–Elliott bursts).
  void set_loss_model(std::unique_ptr<LossModel> model) { loss_ = std::move(model); }
  double loss_probability() const { return loss_ ? loss_->average_loss() : 0.0; }

  /// Injects a packet from `from` into the network. Called by UdpSocket.
  void send(Host& from, Packet pkt);

  const Stats& stats() const { return stats_; }

  /// Mirrors loop activity (via EventLoop::attach_metrics under
  /// `<prefix>.loop.*`), records a `<prefix>.delivery_batch_pkts` histogram
  /// of packets carried per scheduled delivery event, and counts traffic
  /// under `<prefix>.link.*` (packets_sent/delivered/lost/unroutable).
  /// Every host — present or added later — gets a per-link
  /// `<prefix>.link.<host>.in_flight_pkts` queue-depth gauge (packets
  /// scheduled toward it but not yet delivered); host ingress shapers
  /// additionally report under the same per-link prefix (forward/drop
  /// counters and a backlog_pkts queue-depth gauge).
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "net");

  /// Flight-recorder hook (borrowed; nullptr detaches). Propagates to the
  /// event loop and to every host ingress shaper, present and future: sends
  /// become `net.link.send` instants (value = wire bytes), losses
  /// `net.link.drop` instants, and each delivery batch a `net.link.deliver`
  /// span from the first packet's send time to arrival (value = batch size).
  void set_tracer(Tracer* tracer);
  Tracer* tracer() const { return tracer_; }

  /// Called by Host when an ingress shaper is installed, so the shaper picks
  /// up the network's attached registry/tracer without caller plumbing.
  void wire_link_observability(Host& host);

 private:
  void deliver_batch(Host& dst, DeliveryBatch& batch);

  EventLoop loop_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::unique_ptr<LossModel> loss_;
  std::vector<std::unique_ptr<Host>> hosts_;
  /// Hosts get sequential 10.x addresses, so routing is a bounds check plus
  /// a direct index instead of a hash probe — Network::send runs once per
  /// simulated packet, and on relay fan-out sweeps the old unordered_map
  /// lookup was a measurable slice of the per-copy cost.
  std::vector<Host*> by_ip_;
  static constexpr std::uint32_t kFirstIp = 0x0A000001;  // 10.0.0.1
  std::uint32_t next_ip_ = kFirstIp;
  Stats stats_;
  MetricsRegistry::Histogram* m_batch_pkts_ = nullptr;
  MetricsRegistry::Counter* m_link_sent_ = nullptr;
  MetricsRegistry::Counter* m_link_delivered_ = nullptr;
  MetricsRegistry::Counter* m_link_lost_ = nullptr;
  MetricsRegistry::Counter* m_link_unroutable_ = nullptr;
  /// Remembered for wiring shapers installed after attach_metrics().
  MetricsRegistry* registry_ = nullptr;
  std::string metrics_prefix_;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::net
