// Discrete-event scheduler driving the whole simulation.
//
// Events at equal timestamps run in scheduling order (stable), which makes
// simulations deterministic given deterministic callbacks and RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.h"

namespace vc::net {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to now).
  EventId schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` to run after `delay`.
  EventId schedule_after(SimDuration delay, std::function<void()> fn);
  /// Cancels a pending event. Cancelling an already-run event is a no-op.
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` even if idle.
  void run_until(SimTime until);

  std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    EventId id;
    // Ordered as a min-heap on (at, id): FIFO among simultaneous events.
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  void execute_ready(SimTime until);

  SimTime now_ = SimTime::zero();
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace vc::net
