// Discrete-event scheduler driving the whole simulation.
//
// Events at equal timestamps run in scheduling order (stable), which makes
// simulations deterministic given deterministic callbacks and RNG seeds.
//
// Hot-path design (this loop bounds simulated-packet throughput of every
// sweep, so it is built for churn):
//   * Callbacks live in a slab of reusable slots with small-buffer-optimized
//     inline storage — scheduling a typical closure touches no allocator and
//     no hash table; oversized closures fall back to one heap allocation.
//     The slab is chunked (pointer-stable): growing it never relocates armed
//     callbacks, so events run in place even when they schedule more events.
//   * The ready queue is a heap of plain 16-byte (time, id) records. Ids
//     carry a monotonic schedule counter in their high bits, so ordering is
//     a min on (time, schedule order): FIFO among simultaneous events, the
//     determinism invariant every report depends on.
//   * EventIds pack (counter << kSlotBits) | slot — globally unique, which
//     makes them generation tags: each slot remembers the id it is armed
//     with, so cancel() is an O(1) compare + release, and a stale id (fired,
//     cancelled, or slot since reused) can never match. Stale heap records
//     are discarded lazily when popped, by the same compare.
#pragma once

#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"
#include "common/tracer.h"

namespace vc::net {

/// Handle for cancelling a scheduled event. Packs a unique monotonic
/// schedule counter over the slab slot index; 0 is never issued, so a
/// default-initialized id is always safe to cancel.
using EventId = std::uint64_t;

namespace detail {

/// Move-only callable with inline storage for small closures. The event slab
/// stores these by value: a schedule/fire cycle of any closure up to
/// kInlineBytes (a captured Packet plus a couple of pointers) performs zero
/// heap allocations.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  EventCallback() = default;
  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  explicit operator bool() const { return vtable_ != nullptr; }

  /// Rejects empty std::function / null function pointers up front, like the
  /// previous std::function-based API did. Called by the loop before any
  /// slot state changes, so emplace() itself stays off the exception path.
  template <class F>
  static void validate(const F& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "event callback must be callable as void()");
    if constexpr (std::is_constructible_v<bool, const D&>) {
      if (!static_cast<bool>(fn)) throw std::invalid_argument{"null event callback"};
    }
  }

  template <class F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "event callback must be callable as void()");
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (storage()) D(std::forward<F>(fn));
      vtable_ = inline_vtable<D>();
    } else {
      *static_cast<D**>(storage()) = new D(std::forward<F>(fn));
      vtable_ = heap_vtable<D>();
    }
  }

  void invoke() { vtable_->invoke(storage()); }

  void reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage());
      vtable_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs into `dst` from `src`, then destroys `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* dst, void* src) {
          D* s = static_cast<D*>(src);
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) { static_cast<D*>(p)->~D(); },
    };
    return &vt;
  }

  template <class D>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* p) { (**static_cast<D**>(p))(); },
        [](void* dst, void* src) { *static_cast<D**>(dst) = *static_cast<D**>(src); },
        [](void* p) { delete *static_cast<D**>(p); },
    };
    return &vt;
  }

  void* storage() { return static_cast<void*>(buf_); }

  void move_from(EventCallback& other) {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage(), other.storage());
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace detail

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (clamped to now).
  template <class F>
  EventId schedule_at(SimTime at, F&& fn) {
    detail::EventCallback::validate(fn);
    if (at < now_) at = now_;
    if (next_seq_ >> (64 - kSlotBits) != 0) throw std::overflow_error{"event id space exhausted"};
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    const EventId id = (next_seq_ << kSlotBits) | slot;
    // The slot is armed (s.id set, pending_ bumped) only once both fallible
    // steps — callback construction and the heap push — have succeeded, so a
    // throw from either leaves no dangling heap record, armed slot, or lost
    // free-list entry.
    if constexpr (std::is_nothrow_constructible_v<std::decay_t<F>, F&&>) {
      s.fn.emplace(std::forward<F>(fn));
    } else {
      try {
        s.fn.emplace(std::forward<F>(fn));
      } catch (...) {
        free_slots_.push_back(slot);
        throw;
      }
    }
    try {
      heap_.push_back(HeapEntry{at.micros(), id});
    } catch (...) {
      s.fn.reset();
      free_slots_.push_back(slot);
      throw;
    }
    push_heap_entry();  // in-place sift: nothrow
    ++next_seq_;
    s.id = id;
    ++pending_;
    if (pending_ > depth_high_water_) {
      depth_high_water_ = pending_;
      if (m_depth_hwm_ != nullptr) m_depth_hwm_->set(static_cast<double>(depth_high_water_));
    }
    return id;
  }

  /// Schedules `fn` to run after `delay`.
  template <class F>
  EventId schedule_after(SimDuration delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  EventId schedule_at(SimTime, std::nullptr_t) { throw std::invalid_argument{"null event callback"}; }
  EventId schedule_after(SimDuration, std::nullptr_t) {
    throw std::invalid_argument{"null event callback"};
  }

  /// Cancels a pending event in O(1). Cancelling an already-run, cancelled,
  /// or never-issued id is a no-op (ids are globally unique, so a stale id
  /// is inert even after its slot is reused).
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` even if idle.
  void run_until(SimTime until);

  /// Live (scheduled, not yet fired or cancelled) events.
  std::size_t pending() const { return pending_; }
  std::uint64_t events_executed() const { return executed_; }
  /// Largest number of simultaneously pending events seen so far.
  std::size_t queue_depth_high_water() const { return depth_high_water_; }

  /// Mirrors loop activity into `<prefix>.events_executed` (counter) and
  /// `<prefix>.queue_depth_hwm` (gauge). Both are backfilled with activity
  /// that happened before the attach, so a late attach reports full totals.
  /// Per-session registries attach once at session setup (re-attaching the
  /// same registry would double-count the backfill); the pointers are
  /// hot-path cheap.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "event_loop");

  /// Flight-recorder hook: each executed event becomes a `loop.exec` span
  /// (zero sim-duration, value = events still pending) and every 64th
  /// execution samples a `loop.queue_depth` counter track. Borrowed pointer;
  /// nullptr (the default) detaches.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  /// Low bits of an EventId address the slab slot; the high 40 bits are the
  /// schedule counter, so ids compare in schedule order and never repeat
  /// (2^40 events per loop ≈ days of continuous scheduling; guarded).
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  /// Slots live in fixed-size chunks so growth never relocates them. This is
  /// a correctness requirement, not a tuning knob: callbacks are invoked in
  /// place inside their slot, and a callback that schedules events can grow
  /// the slab mid-invocation — with contiguous storage that reallocation
  /// would free the closure out from under itself.
  static constexpr std::uint32_t kChunkShift = 10;  // 1024 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct Slot {
    detail::EventCallback fn;
    /// Id the slot is currently armed with; 0 when free. Heap records and
    /// external handles match against this, which makes stale ones inert.
    EventId id = 0;
  };
  /// 16 bytes — sift traffic is the hot-path cache bound, and `id` doubles
  /// as the FIFO tiebreak among simultaneous events.
  struct HeapEntry {
    std::int64_t at_us = 0;
    EventId id = 0;
  };

  Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    if (slot_count_ > kSlotMask) throw std::length_error{"event loop slot space exhausted"};
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    return slot_count_++;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slot_ref(slot);
    s.fn.reset();
    s.id = 0;
    free_slots_.push_back(slot);
    --pending_;
  }

  // Manual heap over heap_ with min-on-(at_us, id) ordering.
  void push_heap_entry();
  void pop_heap_entry();

  void execute_ready(SimTime until);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;  // id 0 is never issued
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  std::size_t depth_high_water_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  MetricsRegistry::Counter* m_executed_ = nullptr;
  MetricsRegistry::Gauge* m_depth_hwm_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::net
