// Addressing primitives for the simulated internet: synthetic IPv4-style
// addresses and (address, port) endpoints — the unit of "service endpoint"
// discovery in the paper (Fig 3).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace vc::net {

/// A synthetic IPv4-style address. Value 0 is "unspecified".
class IpAddr {
 public:
  constexpr IpAddr() = default;
  constexpr explicit IpAddr(std::uint32_t v) : v_(v) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr bool is_unspecified() const { return v_ == 0; }

  friend constexpr auto operator<=>(IpAddr, IpAddr) = default;

  std::string to_string() const {
    return std::to_string((v_ >> 24) & 0xFF) + "." + std::to_string((v_ >> 16) & 0xFF) + "." +
           std::to_string((v_ >> 8) & 0xFF) + "." + std::to_string(v_ & 0xFF);
  }

 private:
  std::uint32_t v_ = 0;
};

/// Transport protocol of a packet. The paper's platforms stream over UDP with
/// platform-specific fixed ports; TCP appears only as fallback/control.
enum class Protocol : std::uint8_t { kUdp = 0, kTcp = 1 };

/// A transport endpoint.
struct Endpoint {
  IpAddr ip;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;

  std::string to_string() const { return ip.to_string() + ":" + std::to_string(port); }
};

}  // namespace vc::net

// Hash support so endpoints can key the flow tables and relay maps.
template <>
struct std::hash<vc::net::IpAddr> {
  std::size_t operator()(const vc::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<vc::net::Endpoint> {
  std::size_t operator()(const vc::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(e.ip.value()) << 16) | e.port);
  }
};
