#include "net/network.h"

#include <utility>

#include "common/log.h"

namespace vc::net {

Network::Network(std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : latency_(std::move(latency)), rng_(seed) {
  if (!latency_) throw std::invalid_argument{"network needs a latency model"};
}

Host& Network::add_host(std::string name, GeoPoint location) {
  const IpAddr ip{next_ip_++};
  auto host = std::make_unique<Host>(*this, std::move(name), location, ip);
  Host& ref = *host;
  by_ip_.emplace(ip, host.get());
  hosts_.push_back(std::move(host));
  return ref;
}

Host* Network::host(IpAddr ip) {
  auto it = by_ip_.find(ip);
  return it == by_ip_.end() ? nullptr : it->second;
}

void Network::send(Host& from, Packet pkt) {
  pkt.sent_at = now();
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.wire_len();
  from.notify_sent(pkt);

  Host* dst = host(pkt.dst.ip);
  if (dst == nullptr) {
    ++stats_.packets_unroutable;
    VC_LOG(kDebug) << from.name() << ": no route to " << pkt.dst.to_string();
    return;
  }
  if (loss_ && loss_->should_drop(rng_)) {
    ++stats_.packets_lost;
    return;
  }
  const SimDuration delay = latency_->one_way(from.location(), dst->location(), rng_);
  loop_.schedule_after(delay, [this, dst, p = std::move(pkt)]() mutable {
    ++stats_.packets_delivered;
    dst->deliver(std::move(p));
  });
}

}  // namespace vc::net
