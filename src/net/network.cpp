#include "net/network.h"

#include <utility>

#include "common/log.h"

namespace vc::net {

Network::Network(std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : latency_(std::move(latency)), rng_(seed) {
  if (!latency_) throw std::invalid_argument{"network needs a latency model"};
}

Host& Network::add_host(std::string name, GeoPoint location) {
  const IpAddr ip{next_ip_++};
  auto host = std::make_unique<Host>(*this, std::move(name), location, ip);
  Host& ref = *host;
  by_ip_.push_back(host.get());  // index = ip − kFirstIp by construction
  hosts_.push_back(std::move(host));
  wire_link_observability(ref);  // no-op until metrics/tracer are attached
  return ref;
}

Host* Network::host(IpAddr ip) {
  const std::uint32_t index = ip.value() - kFirstIp;  // wraps below kFirstIp
  return index < by_ip_.size() ? by_ip_[index] : nullptr;
}

void Network::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  loop_.attach_metrics(registry, prefix + ".loop");
  m_batch_pkts_ = &registry.histogram(prefix + ".delivery_batch_pkts");
  m_link_sent_ = &registry.counter(prefix + ".link.packets_sent");
  m_link_delivered_ = &registry.counter(prefix + ".link.packets_delivered");
  m_link_lost_ = &registry.counter(prefix + ".link.packets_lost");
  m_link_unroutable_ = &registry.counter(prefix + ".link.packets_unroutable");
  registry_ = &registry;
  metrics_prefix_ = prefix;
  for (auto& host : hosts_) wire_link_observability(*host);
}

void Network::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  loop_.set_tracer(tracer);
  for (auto& host : hosts_) {
    if (host->ingress_shaper() != nullptr) host->ingress_shaper()->set_tracer(tracer);
  }
}

void Network::wire_link_observability(Host& host) {
  if (registry_ != nullptr) {
    const std::string prefix = metrics_prefix_ + ".link." + host.name();
    // Every host's inbound link gets a queue-depth gauge; shaper instruments
    // only exist where an ingress cap is installed.
    host.attach_link_metrics(*registry_, prefix);
    if (host.ingress_shaper() != nullptr) host.ingress_shaper()->attach_metrics(*registry_, prefix);
  }
  if (host.ingress_shaper() != nullptr) host.ingress_shaper()->set_tracer(tracer_);
}

void Network::send(Host& from, Packet pkt) {
  pkt.sent_at = now();
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.wire_len();
  if (m_link_sent_ != nullptr) m_link_sent_->inc();
  if (tracer_ != nullptr) {
    tracer_->instant("net.link.send", now(), static_cast<double>(pkt.wire_len()));
  }
  from.notify_sent(pkt);

  Host* dst = host(pkt.dst.ip);
  if (dst == nullptr) {
    ++stats_.packets_unroutable;
    if (m_link_unroutable_ != nullptr) m_link_unroutable_->inc();
    VC_LOG(kDebug) << from.name() << ": no route to " << pkt.dst.to_string();
    return;
  }
  if (loss_ && loss_->should_drop(rng_)) {
    ++stats_.packets_lost;
    if (m_link_lost_ != nullptr) m_link_lost_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant("net.link.drop", now(), static_cast<double>(pkt.wire_len()));
    }
    return;
  }
  const SimDuration delay = latency_->one_way(from.location(), dst->location(), rng_);
  const SimTime arrival = now() + delay;

  // Coalesce onto the destination's open delivery batch when the arrival
  // tick matches; otherwise schedule a fresh batch event. Only the most
  // recently opened batch per destination is joinable — if jitter interleaves
  // ticks, an older same-tick batch just fires separately, earlier in FIFO
  // order, so per-destination arrival order still equals send order (exactly
  // what per-packet scheduling produced). Keeping the one open batch inline
  // in Host makes the common case a pointer compare, no hash lookup.
  const std::int64_t tick = arrival.micros();
  dst->link_enqueued();
  if (dst->open_batch_tick_ == tick && !dst->open_batch_->sealed) {
    dst->open_batch_->packets.push_back(std::move(pkt));
    return;
  }
  auto batch = std::make_shared<DeliveryBatch>();
  batch->packets.push_back(std::move(pkt));
  dst->open_batch_ = batch;
  dst->open_batch_tick_ = tick;
  loop_.schedule_at(arrival, [this, dst, batch] {
    batch->sealed = true;  // handlers running now may send more to this tick
    if (dst->open_batch_ == batch) {
      dst->open_batch_.reset();
      dst->open_batch_tick_ = -1;
    }
    deliver_batch(*dst, *batch);
  });
}

void Network::deliver_batch(Host& dst, DeliveryBatch& batch) {
  ++stats_.delivery_batches;
  dst.link_drained(batch.packets.size());
  if (m_batch_pkts_ != nullptr) {
    m_batch_pkts_->observe(static_cast<double>(batch.packets.size()));
  }
  if (m_link_delivered_ != nullptr) {
    m_link_delivered_->add(static_cast<std::int64_t>(batch.packets.size()));
  }
  if (tracer_ != nullptr) {
    // One span per batch: from the first packet's send time to arrival — the
    // propagation (plus coalescing) window of this link hop.
    tracer_->span("net.link.deliver", batch.packets.front().sent_at, now(),
                  static_cast<double>(batch.packets.size()));
  }
  for (Packet& p : batch.packets) {
    ++stats_.packets_delivered;
    dst.deliver(std::move(p));
  }
}

}  // namespace vc::net
