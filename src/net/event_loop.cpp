#include "net/event_loop.h"

#include <stdexcept>
#include <utility>

namespace vc::net {

EventId EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument{"null event callback"};
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId EventLoop::schedule_after(SimDuration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::cancel(EventId id) {
  if (callbacks_.erase(id) > 0) cancelled_.insert(id);
}

void EventLoop::execute_ready(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    const Entry e = queue_.top();
    queue_.pop();
    if (cancelled_.erase(e.id) > 0) continue;
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) continue;
    auto fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = e.at;
    ++executed_;
    fn();
  }
}

void EventLoop::run() { execute_ready(SimTime::infinity()); }

void EventLoop::run_until(SimTime until) {
  execute_ready(until);
  if (now_ < until) now_ = until;
}

}  // namespace vc::net
