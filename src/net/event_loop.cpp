#include "net/event_loop.h"

#include <algorithm>

namespace vc::net {

namespace {

// Min ordering on (at_us, id): ids embed the monotonic schedule counter in
// their high bits, so the tie-break keeps simultaneous events FIFO. Entries
// are 16 bytes — four per cache line — which is what keeps deep sifts cheap.
bool fires_before(const auto& a, const auto& b) {
  if (a.at_us != b.at_us) return a.at_us < b.at_us;
  return a.id < b.id;
}

}  // namespace

// Hand-rolled binary min-heap. Layout: children of i are 2i+1, 2i+2.

void EventLoop::push_heap_entry() {
  std::size_t i = heap_.size() - 1;
  const HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 1;
    if (!fires_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventLoop::pop_heap_entry() {
  // Like std::pop_heap: moves the minimum to heap_.back(), restoring the
  // heap property on the first n-1 elements. Bottom-up variant: walk the
  // hole to a leaf along the min-child path without comparing against the
  // displaced tail element, then bubble that element up from the leaf. In
  // the loop's steady state the tail is the most recently scheduled (thus
  // max-seq) entry, so the bubble-up almost always terminates immediately —
  // saving the per-level "done yet?" comparison a top-down sift pays.
  const std::size_t n = heap_.size() - 1;
  const HeapEntry top = heap_[0];
  if (n > 0) {
    const HeapEntry e = heap_[n];
    std::size_t i = 0;
    for (;;) {
      std::size_t child = (i << 1) + 1;
      if (child >= n) break;
      const std::size_t right = child + 1;
      if (right < n && fires_before(heap_[right], heap_[child])) child = right;
      heap_[i] = heap_[child];
      i = child;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 1;
      if (!fires_before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  heap_[n] = top;
}

void EventLoop::cancel(EventId id) {
  // Id 0 is never issued but is the value of a default-initialized handle
  // (and of every free slot's `id`), so it must be rejected here: letting it
  // through would "match" a free slot 0 and double-free it into the free
  // list, corrupting the slab.
  if (id == 0) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id) & kSlotMask;
  if (slot >= slot_count_) return;
  Slot& s = slot_ref(slot);
  if (s.id != id) return;  // already fired/cancelled, or the slot was reused
  release_slot(slot);
  // The heap record stays behind; its id no longer matches the slot, so
  // execute_ready() discards it when it surfaces.
}

void EventLoop::execute_ready(SimTime until) {
  const std::int64_t until_us = until.micros();
  while (!heap_.empty() && heap_.front().at_us <= until_us) {
    pop_heap_entry();
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    const std::uint32_t slot = static_cast<std::uint32_t>(e.id) & kSlotMask;
    Slot& s = slot_ref(slot);
    if (s.id != e.id) continue;  // cancelled
    // Disarm, then invoke in place — no move of the callback. The slot is
    // off the free list during the call so it cannot be reused under us,
    // cancel() of this event's id is already inert, and chunked slot storage
    // means a callback that grows the slab never relocates itself.
    s.id = 0;
    --pending_;
    now_ = SimTime{e.at_us};
    ++executed_;
    if (m_executed_ != nullptr) m_executed_->inc();
    if (tracer_ != nullptr) {
      tracer_->span("loop.exec", now_, now_, static_cast<double>(pending_));
      if ((executed_ & 63u) == 0) {
        tracer_->counter("loop.queue_depth", now_, static_cast<double>(pending_));
      }
    }
    try {
      s.fn.invoke();
    } catch (...) {
      s.fn.reset();
      free_slots_.push_back(slot);
      throw;
    }
    s.fn.reset();
    free_slots_.push_back(slot);
  }
}

void EventLoop::run() { execute_ready(SimTime::infinity()); }

void EventLoop::run_until(SimTime until) {
  execute_ready(until);
  if (now_ < until) now_ = until;
}

void EventLoop::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_executed_ = &registry.counter(prefix + ".events_executed");
  m_depth_hwm_ = &registry.gauge(prefix + ".queue_depth_hwm");
  // Backfill both instruments so a late attach reports the same totals as an
  // attach-before-run: the gauge is overwritten, the counter is advanced by
  // the executions it missed.
  m_executed_->add(static_cast<std::int64_t>(executed_));
  m_depth_hwm_->set(static_cast<double>(depth_high_water_));
}

}  // namespace vc::net
