#include "net/host.h"

#include <stdexcept>
#include <utility>

#include "net/network.h"

namespace vc::net {

Endpoint UdpSocket::local_endpoint() const { return Endpoint{host_.ip(), port_}; }

void UdpSocket::send(Packet pkt) {
  pkt.src = local_endpoint();
  pkt.protocol = Protocol::kUdp;
  host_.network().send(host_, std::move(pkt));
}

void UdpSocket::send_to(const Endpoint& dst, std::int64_t l7_len, StreamKind kind,
                        std::uint64_t seq) {
  Packet pkt;
  pkt.dst = dst;
  pkt.l7_len = l7_len;
  pkt.kind = kind;
  pkt.seq = seq;
  send(std::move(pkt));
}

Host::Host(Network& network, std::string name, GeoPoint location, IpAddr ip)
    : network_(network), name_(std::move(name)), location_(location), ip_(ip) {}

UdpSocket& Host::udp_bind(std::uint16_t port) {
  if (port == 0) {
    while (sockets_.contains(next_ephemeral_)) ++next_ephemeral_;
    port = next_ephemeral_++;
  }
  auto [it, inserted] = sockets_.emplace(port, std::make_unique<UdpSocket>(*this, port));
  if (!inserted) throw std::runtime_error{name_ + ": UDP port already bound: " + std::to_string(port)};
  return *it->second;
}

void Host::udp_close(std::uint16_t port) { sockets_.erase(port); }

UdpSocket* Host::udp_socket(std::uint16_t port) {
  auto it = sockets_.find(port);
  return it == sockets_.end() ? nullptr : it->second.get();
}

void Host::attach_link_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_in_flight_pkts_ = &registry.gauge(prefix + ".in_flight_pkts");
  m_in_flight_pkts_->set(static_cast<double>(in_flight_));
}

void Host::set_ingress_shaper(std::unique_ptr<TokenBucketShaper> shaper) {
  ingress_shaper_ = std::move(shaper);
  if (ingress_shaper_) network_.wire_link_observability(*this);
}

std::uint64_t Host::add_tap(PacketTap tap) {
  const std::uint64_t id = next_tap_id_++;
  taps_.emplace_back(id, std::move(tap));
  return id;
}

void Host::remove_tap(std::uint64_t id) {
  std::erase_if(taps_, [id](const auto& p) { return p.first == id; });
}

void Host::run_taps(Direction dir, const Packet& pkt) {
  for (const auto& [id, tap] : taps_) tap(dir, pkt, network_.now());
}

void Host::notify_sent(const Packet& pkt) { run_taps(Direction::kOutgoing, pkt); }

void Host::deliver(Packet pkt) {
  if (ingress_loss_ && ingress_loss_->should_drop(network_.rng())) {
    ++ingress_losses_;
    return;
  }
  if (ingress_shaper_) {
    ingress_shaper_->submit(std::move(pkt), [this](Packet p) { dispatch(std::move(p)); });
    return;
  }
  dispatch(std::move(pkt));
}

void Host::dispatch(Packet pkt) {
  run_taps(Direction::kIncoming, pkt);
  auto it = sockets_.find(pkt.dst.port);
  if (it == sockets_.end() || !it->second->handler_) {
    ++unroutable_;
    return;
  }
  it->second->handler_(pkt);
}

}  // namespace vc::net
