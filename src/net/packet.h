// The simulated datagram.
//
// Packets carry a size (what the wire and pcap see) plus an optional typed
// payload pointer so receivers can decode media. The measurement path
// (src/capture) is forbidden from dereferencing the payload: it sees only
// what tcpdump would see — timestamps, addresses, and lengths. This keeps the
// reproduction honest about the paper's black-box methodology.
#pragma once

#include <cstdint>
#include <memory>

#include "common/time.h"
#include "net/endpoint.h"

namespace vc::net {

/// Base class for typed packet payloads (e.g. encoded media chunks).
/// Payloads are immutable and shared between fan-out copies of a packet.
class PacketPayload {
 public:
  virtual ~PacketPayload() = default;
};

/// Coarse classification stamped by the *sender* for bookkeeping. Capture
/// analyzers must not rely on it (a real pcap has no such field); it exists
/// for ground-truth validation in tests and ablations.
enum class StreamKind : std::uint8_t {
  kUnknown = 0,
  kVideo,
  kAudio,
  kControl,
  kProbe,
  kProbeReply,
};

/// IPv4+UDP header overhead added to L7 payload length to get wire length.
inline constexpr std::int64_t kUdpHeaderBytes = 28;   // 20 IP + 8 UDP
inline constexpr std::int64_t kTcpHeaderBytes = 40;   // 20 IP + 20 TCP

struct Packet {
  Endpoint src;
  Endpoint dst;
  Protocol protocol = Protocol::kUdp;
  /// Application payload length in bytes (Layer-7, as in Fig 15's rates).
  std::int64_t l7_len = 0;
  /// Time the packet left the sending host.
  SimTime sent_at{};

  // --- sender-side ground truth (not visible to capture analyzers) ---
  StreamKind kind = StreamKind::kUnknown;
  /// Identifier of the media source participant, 0 if n/a.
  std::uint32_t origin_id = 0;
  /// Meeting the packet belongs to, 0 if n/a. Stamped by relays on
  /// inter-relay copies: a trunk between two relays carries many meetings'
  /// aggregated media at once, and unlike a per-meeting peer socket the
  /// receiving relay cannot demux by source endpoint alone.
  std::uint64_t meeting = 0;
  /// Frame sequence number for media, probe id for probes.
  std::uint64_t seq = 0;
  /// Decodable payload, if any.
  std::shared_ptr<const PacketPayload> payload;

  /// Bytes on the wire (headers included) — what pcap reports as length.
  std::int64_t wire_len() const {
    return l7_len + (protocol == Protocol::kUdp ? kUdpHeaderBytes : kTcpHeaderBytes);
  }
};

}  // namespace vc::net
