// Packet-loss models.
//
// The paper's cloud paths are effectively loss-free; its Limitations section
// calls out that realistic last-mile links (broadband, WiFi) are not. These
// models drive the last-mile extension experiments: independent (Bernoulli)
// loss and bursty (Gilbert–Elliott) loss with the same average rate behave
// very differently against a codec whose frames span multiple packets.
#pragma once

#include <memory>
#include <stdexcept>

#include "common/rng.h"

namespace vc::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Decides the fate of one packet. Stateful models advance their state.
  virtual bool should_drop(Rng& rng) = 0;
  /// Long-run average loss probability (for reporting).
  virtual double average_loss() const = 0;
};

/// Independent per-packet loss.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument{"loss probability out of [0,1]"};
  }
  bool should_drop(Rng& rng) override { return rng.chance(p_); }
  double average_loss() const override { return p_; }

 private:
  double p_;
};

/// Two-state Gilbert–Elliott channel: a good state with negligible loss and
/// a bad (burst) state with heavy loss.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good_to_bad = 0.005;  // per packet
    double p_bad_to_good = 0.20;
    double loss_good = 0.0;
    double loss_bad = 0.5;
  };

  GilbertElliottLoss();  // defaults
  explicit GilbertElliottLoss(Params p) : p_(p) {}

  /// Constructs parameters that yield a target average loss with a given
  /// mean burst length (in packets).
  static GilbertElliottLoss with_average(double average_loss, double mean_burst_packets);

  bool should_drop(Rng& rng) override {
    if (bad_) {
      if (rng.chance(p_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng.chance(p_.p_good_to_bad)) bad_ = true;
    }
    return rng.chance(bad_ ? p_.loss_bad : p_.loss_good);
  }

  double average_loss() const override {
    // Stationary distribution of the two-state chain.
    const double pi_bad = p_.p_good_to_bad / (p_.p_good_to_bad + p_.p_bad_to_good);
    return pi_bad * p_.loss_bad + (1.0 - pi_bad) * p_.loss_good;
  }

  bool in_bad_state() const { return bad_; }
  const Params& params() const { return p_; }

 private:
  Params p_;
  bool bad_ = false;
};

inline GilbertElliottLoss::GilbertElliottLoss() : p_(Params{}) {}

inline GilbertElliottLoss GilbertElliottLoss::with_average(double average_loss,
                                                           double mean_burst_packets) {
  if (average_loss <= 0.0 || average_loss >= 1.0 || mean_burst_packets < 1.0) {
    throw std::invalid_argument{"bad Gilbert-Elliott target"};
  }
  Params p;
  p.loss_good = 0.0;
  p.loss_bad = 0.6;
  p.p_bad_to_good = 1.0 / mean_burst_packets;
  // pi_bad * loss_bad = average  →  solve for p_good_to_bad.
  const double pi_bad = average_loss / p.loss_bad;
  if (pi_bad >= 1.0) throw std::invalid_argument{"average loss unreachable"};
  p.p_good_to_bad = pi_bad * p.p_bad_to_good / (1.0 - pi_bad);
  return GilbertElliottLoss{p};
}

}  // namespace vc::net
