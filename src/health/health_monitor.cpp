#include "health/health_monitor.h"

#include <stdexcept>

#include "common/json.h"

namespace vc::health {
namespace {

const char* op_name(SloRule::Op op) {
  switch (op) {
    case SloRule::Op::kLe: return "<=";
    case SloRule::Op::kLt: return "<";
    case SloRule::Op::kGe: return ">=";
    case SloRule::Op::kGt: return ">";
    case SloRule::Op::kEq: return "==";
    case SloRule::Op::kNe: return "!=";
  }
  return "?";
}

const char* field_name(SloRule::Field field) {
  switch (field) {
    case SloRule::Field::kValue: return "value";
    case SloRule::Field::kDelta: return "delta";
    case SloRule::Field::kMean: return "mean";
    case SloRule::Field::kMax: return "max";
    case SloRule::Field::kCount: return "count";
  }
  return "?";
}

bool compare(double observed, SloRule::Op op, double threshold) {
  switch (op) {
    case SloRule::Op::kLe: return observed <= threshold;
    case SloRule::Op::kLt: return observed < threshold;
    case SloRule::Op::kGe: return observed >= threshold;
    case SloRule::Op::kGt: return observed > threshold;
    case SloRule::Op::kEq: return observed == threshold;
    case SloRule::Op::kNe: return observed != threshold;
  }
  return true;
}

void append_escaped(std::string& out, const std::string& s) {
  Tracer::append_json_escaped(out, s.c_str());
}

}  // namespace

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

HealthMonitor::HealthMonitor() : HealthMonitor(Config{}) {}

HealthMonitor::HealthMonitor(Config config) : config_(config) {
  events_.reserve(config_.event_reserve);
}

HealthMonitor& HealthMonitor::add_rule(SloRule rule) {
  if (rule.rule.empty()) throw std::invalid_argument{"slo rule: empty rule name"};
  if (rule.metric.empty()) throw std::invalid_argument{"slo rule: empty metric"};
  for (const SloRule& existing : rules_) {
    if (existing.rule == rule.rule) {
      throw std::invalid_argument{"slo rule: duplicate rule name '" + rule.rule + "'"};
    }
  }
  if (rule.min_duration < SimDuration::zero()) rule.min_duration = SimDuration::zero();
  rules_.push_back(std::move(rule));
  states_.emplace_back();
  return *this;
}

void HealthMonitor::bind(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (registry != nullptr) {
      states_[i].breach_counter = &registry->counter("health." + rules_[i].rule + ".breaches");
    }
    if (tracer != nullptr) {
      states_[i].begin_name = tracer->intern("health.breach_begin." + rules_[i].rule);
      states_[i].end_name = tracer->intern("health.breach_end." + rules_[i].rule);
    }
  }
}

double HealthMonitor::observe(const MetricsTimeline& timeline, const SloRule& rule,
                              bool* found) const {
  *found = true;
  if (const MetricsTimeline::CounterColumn* col = timeline.find_counter(rule.metric)) {
    return rule.field == SloRule::Field::kDelta ? static_cast<double>(col->latest_delta)
                                                : static_cast<double>(col->prev);
  }
  if (const MetricsTimeline::GaugeColumn* col = timeline.find_gauge(rule.metric)) {
    return col->latest;
  }
  if (const MetricsTimeline::HistogramColumn* col = timeline.find_histogram(rule.metric)) {
    switch (rule.field) {
      case SloRule::Field::kDelta: return static_cast<double>(col->latest_count_delta);
      case SloRule::Field::kCount: return static_cast<double>(col->prev_count);
      case SloRule::Field::kMax: return col->latest_max;
      case SloRule::Field::kValue:
      case SloRule::Field::kMean: return col->latest_mean;
    }
  }
  *found = false;
  return 0.0;
}

void HealthMonitor::on_sample(const MetricsTimeline& timeline, SimTime at) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    bool found = false;
    const double observed = observe(timeline, rule, &found);
    state.last_observed = observed;
    // A metric with no column yet counts as healthy: rules may be declared
    // before their instruments first fire.
    const bool healthy = !found || compare(observed, rule.op, rule.threshold);
    if (healthy) {
      if (state.open) {
        state.open = false;
        emit(i, /*begin=*/false, at, observed);
      }
      state.failing = false;
      continue;
    }
    if (!state.failing) {
      state.failing = true;
      state.failing_since_us = at.micros();
    }
    // Edge-triggered: `open` guards against a duplicate breach-begin while
    // the condition keeps failing sample after sample.
    if (!state.open && SimDuration{at.micros() - state.failing_since_us} >= rule.min_duration) {
      state.open = true;
      ++state.breaches;
      if (state.breach_counter != nullptr) state.breach_counter->inc();
      emit(i, /*begin=*/true, at, observed);
    }
  }
}

void HealthMonitor::on_finalize(const MetricsTimeline& timeline, SimTime at) {
  (void)timeline;
  // A breach spanning the session's end closes cleanly at the last sample.
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    RuleState& state = states_[i];
    if (!state.open) continue;
    state.open = false;
    emit(i, /*begin=*/false, at, state.last_observed);
  }
}

void HealthMonitor::emit(std::size_t rule_index, bool begin, SimTime at, double observed) {
  HealthEvent event;
  event.rule_index = static_cast<std::uint32_t>(rule_index);
  event.begin = begin;
  event.severity = rules_[rule_index].severity;
  event.at = at;
  event.observed = observed;
  events_.push_back(event);
  const RuleState& state = states_[rule_index];
  if (tracer_ != nullptr) {
    const char* name = begin ? state.begin_name : state.end_name;
    if (name != nullptr) tracer_->instant(name, at, observed);
  }
}

std::uint64_t HealthMonitor::total_breaches() const {
  std::uint64_t total = 0;
  for (const RuleState& state : states_) total += state.breaches;
  return total;
}

std::size_t HealthMonitor::open_breaches() const {
  std::size_t open = 0;
  for (const RuleState& state : states_) open += state.open ? 1 : 0;
  return open;
}

std::string HealthMonitor::to_json() const {
  std::string out = "{\"rules\":[";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    if (i) out += ",";
    out += "{\"rule\":\"";
    append_escaped(out, rule.rule);
    out += "\",\"metric\":\"";
    append_escaped(out, rule.metric);
    out += "\",\"field\":\"";
    out += field_name(rule.field);
    out += "\",\"op\":\"";
    out += op_name(rule.op);
    out += "\",\"threshold\":" + json::format_number(rule.threshold);
    out += ",\"severity\":\"";
    out += severity_name(rule.severity);
    out += "\",\"min_duration_ms\":" + json::format_number(rule.min_duration.millis());
    out += "}";
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const HealthEvent& event = events_[i];
    if (i) out += ",";
    out += "{\"rule\":\"";
    append_escaped(out, rules_[event.rule_index].rule);
    out += "\",\"type\":\"";
    out += event.begin ? "begin" : "end";
    out += "\",\"severity\":\"";
    out += severity_name(event.severity);
    out += "\",\"ts_us\":" + std::to_string(event.at.micros());
    out += ",\"value\":" + json::format_number(event.observed);
    out += "}";
  }
  out += "],\"breaches\":{";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    append_escaped(out, rules_[i].rule);
    out += "\":" + std::to_string(states_[i].breaches);
  }
  out += "}}";
  return out;
}

std::string HealthMonitor::rules_to_json() const {
  std::string out = "{\n  \"slo_rules\": [\n";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    out += "    {\"rule\": \"";
    append_escaped(out, rule.rule);
    out += "\", \"metric\": \"";
    append_escaped(out, rule.metric);
    out += "\", \"field\": \"";
    out += field_name(rule.field);
    out += "\", \"op\": \"";
    out += op_name(rule.op);
    out += "\", \"threshold\": " + json::format_number(rule.threshold);
    out += ", \"severity\": \"";
    out += severity_name(rule.severity);
    out += "\", \"min_duration_ms\": " + json::format_number(rule.min_duration.millis());
    out += i + 1 < rules_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::vector<SloRule> HealthMonitor::rules_from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  const json::Value* list = root.is_array() ? &root : root.find("slo_rules");
  if (list == nullptr || !list->is_array()) {
    throw std::runtime_error{"slo rules JSON: expected a \"slo_rules\" array"};
  }
  // Reuse add_rule()'s validation (name uniqueness included) by staging the
  // parsed rules through a throwaway monitor.
  HealthMonitor staging;
  for (const json::Value& item : list->array_items) {
    if (!item.is_object()) throw std::runtime_error{"slo rules JSON: rule is not an object"};
    SloRule rule;
    rule.rule = item.at("rule").as_string();
    rule.metric = item.at("metric").as_string();
    const json::Value* field = item.find("field");
    if (field != nullptr) {
      const std::string& name = field->as_string();
      if (name == "value") rule.field = SloRule::Field::kValue;
      else if (name == "delta") rule.field = SloRule::Field::kDelta;
      else if (name == "mean") rule.field = SloRule::Field::kMean;
      else if (name == "max") rule.field = SloRule::Field::kMax;
      else if (name == "count") rule.field = SloRule::Field::kCount;
      else throw std::runtime_error{"slo rules JSON: unknown field '" + name + "'"};
    }
    const std::string& op = item.at("op").as_string();
    if (op == "<=") rule.op = SloRule::Op::kLe;
    else if (op == "<") rule.op = SloRule::Op::kLt;
    else if (op == ">=") rule.op = SloRule::Op::kGe;
    else if (op == ">") rule.op = SloRule::Op::kGt;
    else if (op == "==") rule.op = SloRule::Op::kEq;
    else if (op == "!=") rule.op = SloRule::Op::kNe;
    else throw std::runtime_error{"slo rules JSON: unknown op '" + op + "'"};
    rule.threshold = item.at("threshold").as_number();
    const json::Value* severity = item.find("severity");
    if (severity != nullptr) {
      const std::string& name = severity->as_string();
      if (name == "info") rule.severity = Severity::kInfo;
      else if (name == "warning") rule.severity = Severity::kWarning;
      else if (name == "critical") rule.severity = Severity::kCritical;
      else throw std::runtime_error{"slo rules JSON: unknown severity '" + name + "'"};
    }
    const json::Value* min_duration = item.find("min_duration_ms");
    if (min_duration != nullptr) rule.min_duration = millis_f(min_duration->as_number());
    try {
      staging.add_rule(std::move(rule));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error{std::string("slo rules JSON: ") + e.what()};
    }
  }
  return staging.rules_;
}

}  // namespace vc::health
