// Declarative SLO health rules evaluated against MetricsTimeline snapshots.
//
// A HealthMonitor holds a list of SloRules — "this session is healthy while
// `metric` <op> `threshold`" — and, attached as the timeline's Observer,
// re-evaluates every rule after each periodic sample. Rule transitions are
// edge-triggered: one breach-begin event when the healthy condition first
// fails (optionally only after failing for `min_duration`), one breach-end
// when it holds again, and finalize() closes any breach still open when the
// session ends. Breach edges also fan out to the optional bindings: a tracer
// instant per edge and a `health.<rule>.breaches` registry counter per begin,
// so breaches land in run reports through the normal metrics reduction.
//
// Determinism contract (same as fault::FaultPlan): evaluation draws zero
// randomness and reads only snapshot state, so a monitored run's event list
// is byte-identical at any thread count × shard K — and a monitor armed with
// zero rules observes without emitting anything, leaving every exported byte
// identical to an unmonitored run (gated in CI next to the fault plan's
// empty-plan gate).
//
// Rules load from JSON like fault plans do:
//   {"slo_rules": [{"rule": "reconnect-steady", "metric": "client.reconnects",
//                   "field": "delta", "op": "==", "threshold": 0,
//                   "severity": "warning", "min_duration_ms": 0}, ...]}
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/metrics_timeline.h"
#include "common/time.h"
#include "common/tracer.h"

namespace vc::health {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kCritical = 2 };
const char* severity_name(Severity severity);

struct SloRule {
  /// Unique id; names the breach counter (`health.<rule>.breaches`) and the
  /// tracer instants.
  std::string rule;
  /// Registry instrument name; resolved against the timeline's columns as
  /// counter, then gauge, then histogram. A metric that never appears simply
  /// never breaches (rules may predate their instruments).
  std::string metric;

  /// Which facet of the instrument the rule watches.
  enum class Field : std::uint8_t {
    kValue,  // counter: cumulative; gauge: current value; histogram: running mean
    kDelta,  // counter / histogram count: change since the previous sample
    kMean,   // histogram running mean
    kMax,    // histogram running max
    kCount,  // histogram cumulative observation count
  };
  Field field = Field::kValue;

  /// Healthy while `observed <op> threshold`; a breach is the condition
  /// going false.
  enum class Op : std::uint8_t { kLe, kLt, kGe, kGt, kEq, kNe };
  Op op = Op::kLe;
  double threshold = 0.0;
  Severity severity = Severity::kWarning;
  /// The condition must fail for at least this long (consecutive samples)
  /// before breach-begin fires; zero fires on the first failing sample.
  SimDuration min_duration{};
};

/// One breach edge. Stores the rule by index (not name) so appending an
/// event allocates nothing once the event vector's reserve is in place.
struct HealthEvent {
  std::uint32_t rule_index = 0;
  bool begin = false;  // true: breach-begin; false: breach-end
  Severity severity = Severity::kWarning;
  SimTime at{};
  double observed = 0.0;
};

class HealthMonitor final : public MetricsTimeline::Observer {
 public:
  struct Config {
    /// Events preallocated up front; growth past this allocates (steady
    /// state stays allocation-free below it).
    std::size_t event_reserve = 256;
  };

  HealthMonitor();
  explicit HealthMonitor(Config config);

  /// Validates (non-empty unique rule name, non-empty metric) and registers;
  /// throws std::invalid_argument on a bad rule. Add rules before sampling
  /// starts.
  HealthMonitor& add_rule(SloRule rule);
  const std::vector<SloRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

  /// Optional sinks, bound once before sampling (off the hot path: breach
  /// counters and tracer names resolve/intern here, not per event). Either
  /// pointer may be null.
  void bind(MetricsRegistry* registry, Tracer* tracer);

  // MetricsTimeline::Observer:
  void on_sample(const MetricsTimeline& timeline, SimTime at) override;
  void on_finalize(const MetricsTimeline& timeline, SimTime at) override;

  const std::vector<HealthEvent>& events() const { return events_; }
  std::uint64_t breaches(std::size_t rule_index) const { return states_[rule_index].breaches; }
  std::uint64_t total_breaches() const;
  /// Breaches begun but not yet ended (0 after finalize).
  std::size_t open_breaches() const;

  /// Deterministic JSON object:
  ///   {"rules":[{rule fields},..],
  ///    "events":[{"rule","type":"begin"|"end","severity","ts_us","value"},..],
  ///    "breaches":{"<rule>":count,..}}
  std::string to_json() const;
  /// The {"slo_rules":[...]} exchange format (round-trips through
  /// rules_from_json).
  std::string rules_to_json() const;
  /// Throws std::runtime_error on malformed JSON, an unknown op/field/
  /// severity, or a rule that fails add_rule() validation.
  static std::vector<SloRule> rules_from_json(const std::string& text);

 private:
  struct RuleState {
    bool failing = false;  // condition false at the latest sample
    bool open = false;     // breach-begin emitted, no end yet
    std::int64_t failing_since_us = 0;
    double last_observed = 0.0;
    std::uint64_t breaches = 0;
    MetricsRegistry::Counter* breach_counter = nullptr;  // bound registry sink
    const char* begin_name = nullptr;                    // interned tracer names
    const char* end_name = nullptr;
  };

  /// Reads the rule's facet from the timeline's latest snapshot; sets
  /// `*found` false (and returns 0) when the metric has no column yet.
  /// Never allocates.
  double observe(const MetricsTimeline& timeline, const SloRule& rule, bool* found) const;
  void emit(std::size_t rule_index, bool begin, SimTime at, double observed);

  Config config_;
  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<HealthEvent> events_;
  Tracer* tracer_ = nullptr;
};

}  // namespace vc::health
