// Observable streaming-rate behavior of each platform.
//
// These profiles are the paper's *measurements* turned into policy: the
// sender-side encode rates of Fig 15, the per-session variability contrast
// (Webex virtually constant, Meet highly dynamic, Zoom in between), the
// subscription scales behind Table 4 and Fig 19b, and the bandwidth
// adaptation agility behind Figs 17–18. The codec then actually encodes at
// these targets, so QoE *emerges* from rate + content rather than being
// dialed in.
#pragma once

#include <vector>

#include "abr/abr.h"
#include "common/rng.h"
#include "common/units.h"
#include "platform/platform.h"

namespace vc::platform {

/// Content motion class of the injected feed (Section 4.3).
enum class MotionClass { kLowMotion, kHighMotion };

struct RateProfile {
  // Video send rate for a broadcasting participant (cloud VM scenarios).
  DataRate video_two_party;        // N == 2 (Zoom: P2P path)
  DataRate video_multi_party;      // N > 2 (via relay)
  /// Multiplier applied for low-motion content (≤ 1; Webex ≈ 0.5 — its
  /// low-motion sessions "almost halve the required downstream bandwidth").
  double low_motion_factor = 1.0;
  /// Lognormal sigma of per-session rate variation (Meet ≈ dynamic,
  /// Webex ≈ 0, Zoom small).
  double session_sigma = 0.0;
  /// Within-session rate wobble sigma (slow multiplicative drift).
  double in_session_sigma = 0.0;

  // Bandwidth adaptation under receiver congestion (Figs 17–18).
  DataRate min_video_rate;         // floor the platform will adapt down to
  /// Multiplicative decrease applied per loss-feedback report (0 = none:
  /// Webex barely adapts and stalls instead).
  double loss_backoff = 0.0;
  /// Multiplicative recovery per clean report.
  double clean_recovery = 0.0;

  // Mobile-receiver subscription behavior (Section 5).
  /// Rate scale served to a low-end device (Webex 0.5, others 1.0).
  double low_end_scale = 1.0;
  /// Scale of one gallery tile relative to a full-screen stream.
  double gallery_tile_scale = 0.25;
  /// Whether gallery view reduces rate at all (Meet has no gallery; its
  /// "approximated" gallery changes nothing — Section 5, footnote 6).
  bool gallery_effective = true;
  /// Full-screen still carries small previews of other participants (Meet).
  double preview_scale = 0.0;
  /// Full-screen background buffering of undisplayed streams (Zoom keeps a
  /// trickle of the others to make view switches instant — Table 4).
  double background_scale = 0.0;
  /// Rate served to mobile full-screen receivers for the main stream (Meet
  /// serves mobiles much more than cloud receivers: Fig 19b vs Fig 15).
  DataRate mobile_main_rate;
};

/// The measured/derived profile for a platform.
const RateProfile& rate_profile(PlatformId id);

/// The platform's discrete encode ladder for client-side ABR (src/abr):
/// geometric rungs from the adaptation floor (min_video_rate) up to the
/// two-party maximum (video_two_party), each rung carrying the frame height
/// that budget buys. Every rung therefore sits inside
/// [min_video_rate, video_two_party] by construction — the bound the ABR
/// property tests assert on every adapter decision.
abr::TierLadder tier_ladder(PlatformId id);

/// Sender video target rate for a session: draws the per-session component
/// once (callers keep it for the session) and applies motion class.
DataRate session_video_rate(PlatformId id, int participants, MotionClass motion, Rng& rng);

/// A participant currently sending video (excluding the receiver itself).
struct SenderInfo {
  ParticipantId id = 0;
  DeviceClass device = DeviceClass::kCloudVm;
};

/// The subscriptions a receiver gets, given everyone in the meeting.
/// Encodes each platform's UI/tiling rules:
///  - all platforms display at most traits().max_tiles streams;
///  - Zoom full-screen: main stream + background trickle of others;
///  - Zoom gallery: up to 4 tiles at the low simulcast layer;
///  - Webex gallery: a fixed total budget split across tiles (the paper's
///    counter-intuitive rate *decrease* with more participants) — except
///    when mobile cameras join the gallery, where Webex serves each camera
///    tile at half rate instead of budgeting (Fig 19b: the J3's download
///    more than doubles in LM-Video-View);
///  - Meet: always main + small previews; gallery request is a no-op.
std::vector<StreamSubscription> subscriptions(PlatformId id, ViewMode view, DeviceClass device,
                                              const std::vector<SenderInfo>& senders);

}  // namespace vc::platform
