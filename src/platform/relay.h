// Relay (SFU) servers — the "service endpoints" the paper discovers in
// traffic (Fig 3).
//
// Zoom and Webex use one relay per meeting that every participant streams
// through; Meet gives each client a nearby front-end and relays meetings
// across front-ends. A relay:
//   * forwards each sender's media to the meeting's other participants,
//     applying per-(receiver, origin) subscription scales (simulcast layer
//     selection / tiling policy);
//   * forwards media to peer front-ends (Meet) exactly once, never back;
//   * answers probe packets (the tcpping analog) — ICMP is "blocked", like
//     the real infrastructures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "net/network.h"
#include "platform/platform.h"

namespace vc::platform {

class RelayServer {
 public:
  struct Stats {
    std::int64_t media_in = 0;
    std::int64_t media_forwarded = 0;
    std::int64_t probes_answered = 0;
    std::int64_t control_forwarded = 0;
  };

  /// Media-plane processing latency added per forwarded packet (ingest,
  /// decrypt/reencrypt, packetization). The paper's lag floors imply
  /// platform-specific relay costs: Webex's pipeline is the leanest, Meet's
  /// front-ends add noticeably more (and more variable) latency — the
  /// paper's "worst lag despite the lowest RTTs" observation.
  struct ForwardingDelay {
    SimDuration base = millis(6);
    double jitter_mean_ms = 2.0;  // exponential
  };

  RelayServer(net::Network& network, std::string name, GeoPoint location,
              std::uint16_t media_port);  // default forwarding delay
  RelayServer(net::Network& network, std::string name, GeoPoint location,
              std::uint16_t media_port, ForwardingDelay delay);

  net::Host& host() { return *host_; }
  net::Endpoint endpoint() const { return net::Endpoint{host_->ip(), media_port_}; }
  const Stats& stats() const { return stats_; }
  /// Live per-destination departure-state entries. Departure state lives
  /// inside Participant/PeerLink records, so removing a participant, meeting
  /// or peer link structurally reclaims it (the predecessor kept a separate
  /// endpoint-keyed map that grew without bound across sessions); exposed so
  /// tests can assert the reclamation.
  std::size_t departure_state_size() const {
    std::size_t n = 0;
    for (const auto& [id, m] : meetings_) n += m.participants.size() + m.peers.size();
    return n;
  }

  /// Mirrors the Stats fields into `<prefix>.media_in`,
  /// `<prefix>.media_forwarded`, `<prefix>.probes_answered` and
  /// `<prefix>.control_forwarded` counters plus `<prefix>.fan_out`
  /// (forwarded copies per ingested media packet) and
  /// `<prefix>.departure_batch_pkts` (packets per scheduled departure event)
  /// histograms. Several relays may share one registry: their counts
  /// aggregate, which is exactly the infrastructure-wide view scalability
  /// reports want.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "relay");

  void add_participant(MeetingId meeting, ParticipantId id, net::Endpoint client_endpoint);
  void remove_participant(MeetingId meeting, ParticipantId id);
  void remove_meeting(MeetingId meeting);

  /// Replaces the receiver's video subscriptions (empty = receive nothing).
  void set_subscriptions(MeetingId meeting, ParticipantId receiver,
                         std::vector<StreamSubscription> subs);

  /// Links a peer front-end for a meeting (Meet). One direction; callers
  /// link both ways.
  void link_peer(MeetingId meeting, RelayServer* peer);
  void unlink_peer(MeetingId meeting, RelayServer* peer);

 private:
  /// Packets departing to one destination at one tick. A batch rides a
  /// single scheduled event; `sealed` flips when that event fires so a
  /// zero-delay pipeline can never append to a batch that already left.
  struct DepartureBatch {
    std::vector<net::Packet> packets;
    bool sealed = false;
  };
  /// Per-destination departure pipeline state. `floor` is the earliest next
  /// departure: the media pipeline is FIFO per flow, so jittered processing
  /// delays never reorder a stream. Departures are therefore monotonic per
  /// destination, and at most one batch (the latest tick) is open at a time.
  /// Stored inline in the Participant/PeerLink it belongs to: the forwarding
  /// loop already holds that record, so departure lookup costs nothing.
  ///
  /// Semantic note: because the floor lives in the registration record, the
  /// FIFO guarantee is scoped to one registration. A participant that is
  /// removed and re-added starts with a fresh floor, so its new packets may
  /// interleave with batches still in flight from before the removal (the
  /// old endpoint-keyed global map persisted the floor across re-joins, at
  /// the cost of leaking an entry per departed endpoint forever). This
  /// mirrors a real rejoin, which negotiates a new transport with no
  /// ordering relative to the abandoned one.
  struct Departure {
    SimTime floor{};
    SimTime open_tick{};
    std::shared_ptr<DepartureBatch> open;
  };

  struct Participant {
    ParticipantId id = 0;
    net::Endpoint endpoint;
    /// origin participant → forwarding scale for video.
    std::unordered_map<ParticipantId, double> video_scale;
    /// Until the control plane pushes subscriptions, forward everything;
    /// afterwards, an origin absent from the map means "not subscribed"
    /// (this is what makes audio-only/screen-off stop video entirely).
    bool subscriptions_set = false;
    Departure departure;
  };
  struct PeerLink {
    RelayServer* relay = nullptr;
    Departure departure;
  };
  struct Meeting {
    std::vector<Participant> participants;
    std::vector<PeerLink> peers;
  };

  void on_packet(const net::Packet& pkt);
  void forward_media(Meeting& meeting, const net::Packet& pkt, bool from_peer);

  /// Sends a packet from the relay after the processing delay, through the
  /// destination's departure pipeline.
  void send_delayed(net::Packet pkt, Departure& dep);

  net::Network& network_;
  net::Host* host_;
  std::uint16_t media_port_;
  ForwardingDelay delay_;
  net::UdpSocket* socket_;
  std::unordered_map<MeetingId, Meeting> meetings_;
  /// sender endpoint → (meeting, participant) for packet classification.
  std::unordered_map<net::Endpoint, std::pair<MeetingId, ParticipantId>> by_sender_;
  /// peer relay endpoint → meeting id.
  std::unordered_map<net::Endpoint, MeetingId> by_peer_;
  Stats stats_;
  MetricsRegistry::Counter* m_media_in_ = nullptr;
  MetricsRegistry::Counter* m_media_forwarded_ = nullptr;
  MetricsRegistry::Counter* m_probes_answered_ = nullptr;
  MetricsRegistry::Counter* m_control_forwarded_ = nullptr;
  MetricsRegistry::Histogram* m_fan_out_ = nullptr;
  MetricsRegistry::Histogram* m_departure_batch_pkts_ = nullptr;
};

}  // namespace vc::platform
