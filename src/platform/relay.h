// Relay (SFU) servers — the "service endpoints" the paper discovers in
// traffic (Fig 3).
//
// Zoom and Webex use one relay per meeting that every participant streams
// through; Meet gives each client a nearby front-end and relays meetings
// across front-ends. A relay:
//   * forwards each sender's media to the meeting's other participants,
//     applying per-(receiver, origin) subscription scales (simulcast layer
//     selection / tiling policy);
//   * forwards media to peer front-ends (Meet) exactly once, never back;
//   * answers probe packets (the tcpping analog) — ICMP is "blocked", like
//     the real infrastructures.
//
// Fan-out sharding (PR 3): the per-receiver copy/scale/stage work of one
// ingested packet is independent per Participant, so a relay can partition a
// meeting's receivers into K contiguous join-order shards and run them on a
// ShardPool. Shards stage their work instead of touching the event loop;
// the caller then merges the staged work back in (shard index, then join
// order within the shard) order — which, because the partition is
// contiguous, is exactly the serial path's join order, so schedule_at
// sequence, batch composition and every downstream tiebreak are
// byte-identical to K=0. Combined with the one-draw-per-ingest jitter rule
// (see forward_media) the sharded path is byte-identical at any K.
//
// The one-draw rule also restructures the serial hot path: every copy whose
// FIFO floor permits it departs at the ingest's shared candidate tick, so
// those copies — nearly all of them, in steady state — ride ONE ingest-wide
// departure batch (one allocation, recycled after firing, and one scheduled
// event per ingested packet) instead of a batch per destination. Floored
// copies append to their destination's still-open batch from an earlier
// ingest and schedule nothing; only the rare floored copy with no matching
// open batch pays for a fresh per-destination batch and event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/shard_pool.h"
#include "common/tracer.h"
#include "net/network.h"
#include "platform/platform.h"

namespace vc::platform {

class RelayServer {
 public:
  struct Stats {
    std::int64_t media_in = 0;
    /// Media copies forwarded to meeting participants (excludes peer links).
    std::int64_t media_forwarded = 0;
    /// Media copies forwarded to peer front-ends (Meet's inter-relay leg).
    /// Kept separate from media_forwarded: a peer forward carries the whole
    /// meeting's traffic onward, not one receiver's subscription, so mixing
    /// the two made the fan-out figures overstate per-receiver load.
    std::int64_t peer_forwarded = 0;
    std::int64_t probes_answered = 0;
    std::int64_t control_forwarded = 0;
    /// Packets (media, control and probes alike) that arrived while the
    /// relay was crashed — the fault subsystem's "packets lost in outage".
    std::int64_t crash_dropped = 0;
    std::int64_t crashes = 0;
    std::int64_t restarts = 0;
    /// Packets ingested over relay-to-relay trunks (src/fleet). Like Meet's
    /// peer ingest, trunk ingest is not counted in media_in: media_in is
    /// first-hop load, and a cascaded packet was already counted once at its
    /// ingress relay.
    std::int64_t trunk_in = 0;
  };

  /// Media-plane processing latency added per forwarded packet (ingest,
  /// decrypt/reencrypt, packetization). The paper's lag floors imply
  /// platform-specific relay costs: Webex's pipeline is the leanest, Meet's
  /// front-ends add noticeably more (and more variable) latency — the
  /// paper's "worst lag despite the lowest RTTs" observation.
  struct ForwardingDelay {
    SimDuration base = millis(6);
    double jitter_mean_ms = 2.0;  // exponential
  };

  RelayServer(net::Network& network, std::string name, GeoPoint location,
              std::uint16_t media_port);  // default forwarding delay
  RelayServer(net::Network& network, std::string name, GeoPoint location,
              std::uint16_t media_port, ForwardingDelay delay);

  net::Host& host() { return *host_; }
  net::Endpoint endpoint() const { return net::Endpoint{host_->ip(), media_port_}; }
  const Stats& stats() const { return stats_; }
  /// Live per-destination departure-state entries. Departure state lives
  /// inside Participant/PeerLink records, so removing a participant, meeting
  /// or peer link structurally reclaims it (the predecessor kept a separate
  /// endpoint-keyed map that grew without bound across sessions); exposed so
  /// tests can assert the reclamation.
  std::size_t departure_state_size() const {
    std::size_t n = 0;
    for (const auto& [id, m] : meetings_) n += m.participants.size() + m.peers.size();
    return n;
  }

  /// Shards this relay's media fan-out into `shards` contiguous join-order
  /// partitions, executed on `pool` when one is given (pool == nullptr, or a
  /// pool with zero workers, runs the shards inline on the event-loop thread
  /// — same staged code path, no threads). shards <= 0 restores the plain
  /// serial loop. The forwarding semantics — departure times, FIFO floors,
  /// batch composition, event order, Stats, standard metrics — are identical
  /// at every setting; only wall-clock and the shard-scoped metrics differ.
  /// The pool is borrowed, not owned, and must outlive the relay (or be
  /// detached by passing nullptr); several relays may share one pool because
  /// fan-outs are dispatched one at a time from the single event-loop thread.
  void set_fan_out_sharding(ShardPool* pool, int shards);
  int fan_out_shards() const { return shards_; }

  /// Mirrors the Stats fields into `<prefix>.media_in`,
  /// `<prefix>.media_forwarded`, `<prefix>.peer_forwarded`,
  /// `<prefix>.probes_answered` and `<prefix>.control_forwarded` counters
  /// plus `<prefix>.fan_out` (participant copies per ingested media packet —
  /// peer-link forwards are counted in peer_forwarded, not here) and
  /// `<prefix>.departure_batch_pkts` (packets per scheduled departure event)
  /// histograms. Several relays may share one registry: their counts
  /// aggregate, which is exactly the infrastructure-wide view scalability
  /// reports want. These metrics are part of the determinism contract: they
  /// are byte-identical at every fan-out shard count.
  void attach_metrics(MetricsRegistry& registry, const std::string& prefix = "relay");

  /// Execution-strategy observability, deliberately OUTSIDE the determinism
  /// contract (like RunReport's threads/wall_seconds): per-shard forwarded
  /// copy counters `<prefix>.shard<i>.fan_out` and a `<prefix>.shard_imbalance`
  /// histogram (max−min copies across shards per sharded fan-out). These
  /// depend on K by construction, so standard run reports must not include
  /// them — hence the separate attach.
  void attach_shard_metrics(MetricsRegistry& registry, const std::string& prefix = "relay");

  /// Flight-recorder hook (borrowed; nullptr detaches). Media ingests become
  /// `relay.ingest` spans (ingest time → shared candidate departure tick,
  /// value = participant copies), departure events `relay.depart` instants
  /// (value = batch size), probe answers `relay.probe` instants — all on the
  /// loop thread and byte-identical at every shard count K. When the tracer's
  /// shard_detail flag is set, each sharded fan-out additionally records one
  /// `relay.shard_merge` instant per shard (value = that shard's copies) —
  /// K-dependent by construction, hence OUTSIDE the determinism contract,
  /// like attach_shard_metrics.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Process crash: all meeting/participant/peer registrations are lost (a
  /// real SFU restart loses its session state) and every packet arriving
  /// until restart() is dropped and counted in `crash_dropped`. The control
  /// plane (BasePlatform::notify_relay_crashed) is responsible for telling
  /// clients their route died; rejoining clients re-register and get their
  /// subscriptions re-pushed. Deterministic: a crashed relay draws no
  /// randomness, so the network RNG stream is byte-identical to a run where
  /// the dropped packets simply never existed downstream.
  void crash();
  void restart();
  bool crashed() const { return crashed_; }

  void add_participant(MeetingId meeting, ParticipantId id, net::Endpoint client_endpoint);
  void remove_participant(MeetingId meeting, ParticipantId id);
  void remove_meeting(MeetingId meeting);

  /// Replaces the receiver's video subscriptions (empty = receive nothing).
  void set_subscriptions(MeetingId meeting, ParticipantId receiver,
                         std::vector<StreamSubscription> subs);

  /// Links a peer front-end for a meeting (Meet). One direction; callers
  /// link both ways.
  void link_peer(MeetingId meeting, RelayServer* peer);
  void unlink_peer(MeetingId meeting, RelayServer* peer);

  /// Trunk egress (src/fleet cascaded relays): packets departing toward
  /// `peer_endpoint` are handed to `send` at their departure tick instead of
  /// this relay's UDP socket, so a fleet::Trunk can model the inter-relay
  /// leg's capacity and propagation explicitly. Departure scheduling, FIFO
  /// floors and batch composition are untouched — the interception happens
  /// after the batch is sealed, on the event-loop thread, which is what keeps
  /// the trunked path inside the shard-determinism contract. An empty route
  /// map costs one branch per departure event (the fleet-of-1 gate's ≤2%
  /// budget). Passing a null `send` removes the route.
  void set_trunk_egress(net::Endpoint peer_endpoint, std::function<void(net::Packet)> send);

  /// Ingest from a trunk, bypassing the network/UDP path. Demuxed by
  /// pkt.meeting (one trunk aggregates many meetings); treated exactly like
  /// a Meet peer ingest: from_peer semantics, never re-forwarded to peers,
  /// not counted in media_in. Dropped (and counted in crash_dropped) while
  /// crashed, like any other arriving packet.
  void ingest_trunk(const net::Packet& pkt);

 private:
  /// Packets departing to one destination at one tick. A batch rides a
  /// single scheduled event; `sealed` flips when that event fires so a
  /// zero-delay pipeline can never append to a batch that already left.
  struct DepartureBatch {
    std::vector<net::Packet> packets;
    bool sealed = false;
  };
  /// Per-destination departure pipeline state. `floor` is the earliest next
  /// departure: the media pipeline is FIFO per flow, so jittered processing
  /// delays never reorder a stream. Departures are therefore monotonic per
  /// destination, and at most one batch (the latest tick) is open at a time.
  /// Stored inline in the Participant/PeerLink it belongs to: the forwarding
  /// loop already holds that record, so departure lookup costs nothing — and
  /// under sharding it makes each destination's pipeline state owned by
  /// exactly one shard (participants are partitioned), so shard workers
  /// never share mutable state.
  ///
  /// Semantic note: because the floor lives in the registration record, the
  /// FIFO guarantee is scoped to one registration. A participant that is
  /// removed and re-added starts with a fresh floor, so its new packets may
  /// interleave with batches still in flight from before the removal (the
  /// old endpoint-keyed global map persisted the floor across re-joins, at
  /// the cost of leaking an entry per departed endpoint forever). This
  /// mirrors a real rejoin, which negotiates a new transport with no
  /// ordering relative to the abandoned one.
  struct Departure {
    SimTime floor{};
    SimTime open_tick{};
    std::shared_ptr<DepartureBatch> open;
  };

  struct Participant {
    ParticipantId id = 0;
    net::Endpoint endpoint;
    /// origin participant → forwarding scale for video.
    std::unordered_map<ParticipantId, double> video_scale;
    /// Until the control plane pushes subscriptions, forward everything;
    /// afterwards, an origin absent from the map means "not subscribed"
    /// (this is what makes audio-only/screen-off stop video entirely).
    bool subscriptions_set = false;
    Departure departure;
  };
  struct PeerLink {
    RelayServer* relay = nullptr;
    Departure departure;
  };
  struct Meeting {
    /// Own id, so forwarding paths holding only the Meeting& can stamp
    /// inter-relay copies with the meeting they belong to (trunk demux).
    MeetingId id = 0;
    std::vector<Participant> participants;
    std::vector<PeerLink> peers;
  };

  /// A departure batch a shard opened but could not schedule (scheduling is
  /// the caller's job, in deterministic merge order).
  struct StagedBatch {
    SimTime tick{};
    std::shared_ptr<DepartureBatch> batch;
  };
  /// A packet a shard wants appended to an already-open batch. Appending
  /// directly would race: the target can be a previous ingest's shared
  /// candidate batch, which several shards' destinations reference at once.
  /// Staging keeps the append on the merge step (loop thread), where shard
  /// order reproduces the serial path's join-order append sequence.
  struct StagedAppend {
    DepartureBatch* target = nullptr;
    net::Packet pkt;
  };
  /// Per-shard staging area, cacheline-isolated against false sharing.
  /// Reused across fan-outs so the steady state allocates nothing.
  struct alignas(64) ShardScratch {
    std::vector<StagedBatch> staged;
    std::vector<StagedAppend> appends;
    /// This shard's slice of the ingest-wide candidate batch. Pre-seeded on
    /// the loop thread before dispatch (workers never allocate batches) and
    /// retained — emptied by the merge splice — across fan-outs.
    std::shared_ptr<DepartureBatch> cand;
    /// Destinations whose open-batch handle must be repointed to the spliced
    /// ingest-wide batch at merge (workers only see their own slice).
    std::vector<Departure*> cand_deps;
    std::int64_t copies = 0;
  };

  void on_packet(const net::Packet& pkt);
  void forward_media(Meeting& meeting, const net::Packet& pkt, bool from_peer);
  /// Fans pkt out to all participants (serial or sharded per shards_),
  /// returning the number of copies forwarded.
  std::int64_t fan_out_media(Meeting& meeting, const net::Packet& pkt, SimTime candidate);
  /// The per-receiver loop body shared by the serial path and every shard:
  /// copy/scale/floor/route for participants [begin, end), in join order.
  /// Each copy takes exactly one of three routes:
  ///   * floor < candidate — the common, unconstrained case: the copy departs
  ///     at this ingest's shared candidate tick; `on_candidate(dep, pkt)`
  ///     collects it into the ingest-wide batch (one event for the whole
  ///     fan-out) and the caller repoints dep.open at that batch;
  ///   * the destination's open batch is at the required tick —
  ///     `on_append(batch, pkt)` joins it, never scheduling;
  ///   * otherwise a fresh per-destination batch goes to `sink(tick, batch)`.
  /// Returns the number of copies made.
  template <class NewBatchSink, class OnCandidate, class OnAppend>
  std::int64_t fan_out_range(Meeting& meeting, const net::Packet& pkt, SimTime candidate,
                             std::size_t begin, std::size_t end, NewBatchSink&& sink,
                             OnCandidate&& on_candidate, OnAppend&& on_append);

  /// This ingest's jittered departure candidate: now + base + exp(jitter).
  /// Drawn ONCE per ingested packet, on the event-loop thread (see
  /// forward_media for why that is the determinism linchpin).
  SimTime departure_candidate();
  /// Runs pkt through the destination's departure pipeline at `candidate`
  /// (FIFO floor, batch coalescing), scheduling any newly opened batch.
  void send_with_candidate(net::Packet pkt, Departure& dep, SimTime candidate);
  /// Schedules the departure event that seals and transmits `batch`.
  void schedule_departure(SimTime tick, std::shared_ptr<DepartureBatch> batch);
  /// Final egress of one departed packet: a registered trunk route when the
  /// destination is a trunked peer, the relay's UDP socket otherwise.
  void transmit(net::Packet&& pkt);
  /// Like schedule_departure, but for an ingest-wide candidate batch: after
  /// transmitting, the batch is recycled onto batch_spares_ when no departure
  /// pipeline references it any more (destinations usually repoint their
  /// open-batch handle to a newer ingest long before the old one fires, so
  /// the steady state reuses one allocation instead of making a fresh batch —
  /// and a fresh packet-vector growth chain — per ingested packet).
  void schedule_candidate_departure(SimTime tick, std::shared_ptr<DepartureBatch> batch);
  /// An empty, unsealed batch: recycled from batch_spares_ when possible,
  /// freshly allocated (with `reserve_hint` packet capacity) otherwise.
  std::shared_ptr<DepartureBatch> acquire_batch(std::size_t reserve_hint);

  void rebuild_shard_metrics();

  net::Network& network_;
  net::Host* host_;
  std::uint16_t media_port_;
  ForwardingDelay delay_;
  net::UdpSocket* socket_;
  std::unordered_map<MeetingId, Meeting> meetings_;
  /// sender endpoint → (meeting, participant) for packet classification.
  std::unordered_map<net::Endpoint, std::pair<MeetingId, ParticipantId>> by_sender_;
  /// peer relay endpoint → meeting id.
  std::unordered_map<net::Endpoint, MeetingId> by_peer_;
  /// peer relay endpoint → trunk egress (src/fleet). Consulted at departure
  /// fire time; empty for untrunked relays, so the common path pays only a
  /// hoisted emptiness check per departure event.
  std::unordered_map<net::Endpoint, std::function<void(net::Packet)>> trunk_routes_;
  Stats stats_;
  bool crashed_ = false;

  ShardPool* pool_ = nullptr;  // borrowed; nullptr ⇒ shards run inline
  int shards_ = 0;             // <= 0 ⇒ serial fan-out
  std::vector<ShardScratch> scratch_;
  /// Fired candidate batches ready for reuse (loop thread only).
  std::vector<std::shared_ptr<DepartureBatch>> batch_spares_;

  MetricsRegistry::Counter* m_media_in_ = nullptr;
  MetricsRegistry::Counter* m_media_forwarded_ = nullptr;
  MetricsRegistry::Counter* m_peer_forwarded_ = nullptr;
  MetricsRegistry::Counter* m_probes_answered_ = nullptr;
  MetricsRegistry::Counter* m_control_forwarded_ = nullptr;
  MetricsRegistry::Counter* m_crash_dropped_ = nullptr;
  MetricsRegistry::Counter* m_crashes_ = nullptr;
  MetricsRegistry::Counter* m_restarts_ = nullptr;
  MetricsRegistry::Counter* m_trunk_in_ = nullptr;
  MetricsRegistry::Histogram* m_fan_out_ = nullptr;
  MetricsRegistry::Histogram* m_departure_batch_pkts_ = nullptr;

  Tracer* tracer_ = nullptr;

  MetricsRegistry* shard_registry_ = nullptr;  // for rebuilds when K changes
  std::string shard_prefix_;
  std::vector<MetricsRegistry::Counter*> m_shard_fan_out_;
  MetricsRegistry::Histogram* m_shard_imbalance_ = nullptr;
};

}  // namespace vc::platform
