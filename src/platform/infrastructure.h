// Datacenter footprints and endpoint-allocation (churn) policies.
//
// What the paper inferred from RTTs and endpoint counts (Section 4.2):
//  * Zoom: US-based sites (east/central/west). US-hosted sessions get a
//    relay in the host's region; non-US sessions are load-balanced across
//    the US regions (the trimodal RTT bands of Figs 10a/11a). A fresh relay
//    IP almost every session (~20 distinct endpoints over 20 sessions).
//  * Webex (free tier): everything relays via US-east, always — US-west
//    pairs detour through the east coast (Fig 9b). Fresh IP per session
//    (~19.5 / 20).
//  * Meet: globally distributed front-ends; each client talks to a nearby
//    front-end and sticks to one or two across sessions (~1.8 / 20).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geo.h"
#include "common/rng.h"
#include "net/network.h"
#include "platform/platform.h"
#include "platform/relay.h"

namespace vc::platform {

struct Site {
  std::string name;
  GeoPoint location;
};

/// The modeled datacenter sites of a platform (free tier).
const std::vector<Site>& platform_sites(PlatformId id);

/// Webex's broader footprint available to paid subscriptions (Section 6:
/// paid-tier clients in US-west and Europe stream from geographically
/// close-by Webex servers with RTTs under 20 ms).
const std::vector<Site>& webex_paid_sites();

/// Allocates relay servers according to each platform's observed policy.
/// Owns every relay it creates (relays persist across sessions, like real
/// infrastructure).
class RelayAllocator {
 public:
  RelayAllocator(net::Network& network, PlatformId platform, std::uint16_t media_port,
                 std::uint64_t seed);

  /// Session relay for Zoom: near the host if the host is in the US,
  /// otherwise a uniformly chosen US region (regional load balancing).
  /// Returns a fresh relay (new IP) every call.
  RelayServer* zoom_session_relay(const GeoPoint& host_location);

  /// Session relay for Webex: always US-east; occasionally (p≈2.5%) reuses
  /// the previous relay, otherwise a fresh IP.
  RelayServer* webex_session_relay();

  /// Paid-tier Webex: a fresh relay at the site nearest the host.
  RelayServer* webex_paid_session_relay(const GeoPoint& host_location);

  /// Front-end for a Meet client: the site nearest the client; the client
  /// has a primary and a secondary front-end there and picks the primary
  /// with high probability each session (≈1.8 distinct over 20 sessions).
  RelayServer* meet_front_end(const net::Host& client);

  /// Explicitly provision a relay at `site`, bypassing the per-platform
  /// steering policies above. Fleet deployments (src/fleet) use this to
  /// stand up a fixed pool of relays up front; the relay is owned here and
  /// addressable via relay_at() like any policy-allocated one. Draws no RNG.
  RelayServer* provision_relay(const Site& site) { return new_relay(site); }

  std::size_t relays_created() const { return relays_.size(); }

  /// Relay by creation index (0-based), or nullptr when out of range. The
  /// fault subsystem addresses crash targets this way: creation order is
  /// deterministic, so "relay 0" names the same server at every thread and
  /// shard count.
  RelayServer* relay_at(std::size_t index) {
    return index < relays_.size() ? relays_[index].get() : nullptr;
  }

  /// Every relay created from now on reports into `registry` under the
  /// shared "relay" prefix (so counts aggregate infrastructure-wide). Pass
  /// nullptr to stop instrumenting new relays.
  void set_metrics(MetricsRegistry* registry) { metrics_ = registry; }

  /// Every relay allocated from now on records into `tracer` (borrowed;
  /// nullptr to stop). See RelayServer::set_tracer for the record families.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Every relay created from now on shards its fan-out `shards` ways on
  /// `pool` (borrowed; may be nullptr = shards run inline). Results are
  /// byte-identical at any setting — see RelayServer::set_fan_out_sharding.
  void set_fan_out_sharding(ShardPool* pool, int shards) {
    fan_out_pool_ = pool;
    fan_out_shards_ = shards;
  }

 private:
  RelayServer* new_relay(const Site& site);
  const Site& nearest_site(const GeoPoint& p) const;

  net::Network& network_;
  PlatformId platform_;
  std::uint16_t media_port_;
  Rng rng_;
  std::vector<std::unique_ptr<RelayServer>> relays_;
  RelayServer* last_webex_relay_ = nullptr;
  /// Meet stickiness: client IP → {primary, secondary} front-ends.
  std::unordered_map<net::IpAddr, std::pair<RelayServer*, RelayServer*>> meet_front_ends_;
  int relay_counter_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  ShardPool* fan_out_pool_ = nullptr;
  int fan_out_shards_ = 0;
};

}  // namespace vc::platform
