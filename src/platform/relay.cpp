#include "platform/relay.h"

#include <algorithm>
#include <cmath>

namespace vc::platform {

RelayServer::RelayServer(net::Network& network, std::string name, GeoPoint location,
                         std::uint16_t media_port)
    : RelayServer(network, std::move(name), location, media_port, ForwardingDelay{}) {}

RelayServer::RelayServer(net::Network& network, std::string name, GeoPoint location,
                         std::uint16_t media_port, ForwardingDelay delay)
    : network_(network),
      host_(&network.add_host(std::move(name), location)),
      media_port_(media_port),
      delay_(delay) {
  socket_ = &host_->udp_bind(media_port_);
  socket_->on_receive([this](const net::Packet& pkt) { on_packet(pkt); });
}

void RelayServer::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_media_in_ = &registry.counter(prefix + ".media_in");
  m_media_forwarded_ = &registry.counter(prefix + ".media_forwarded");
  m_probes_answered_ = &registry.counter(prefix + ".probes_answered");
  m_control_forwarded_ = &registry.counter(prefix + ".control_forwarded");
  m_fan_out_ = &registry.histogram(prefix + ".fan_out");
  m_departure_batch_pkts_ = &registry.histogram(prefix + ".departure_batch_pkts");
}

void RelayServer::send_delayed(net::Packet pkt, Departure& dep) {
  const SimDuration d =
      delay_.base + millis_f(network_.rng().exponential(delay_.jitter_mean_ms));
  SimTime departure = network_.now() + d;
  // FIFO per destination: a later packet never departs before an earlier one.
  // Under load the floor dominates the jittered delay, so consecutive
  // packets to one receiver collapse onto the same tick — those ride the
  // destination's open batch instead of scheduling fresh events.
  if (departure < dep.floor) departure = dep.floor;
  dep.floor = departure;
  if (dep.open && !dep.open->sealed && dep.open_tick == departure) {
    dep.open->packets.push_back(std::move(pkt));
    return;
  }
  auto batch = std::make_shared<DepartureBatch>();
  batch->packets.push_back(std::move(pkt));
  dep.open = batch;
  dep.open_tick = departure;
  network_.loop().schedule_at(departure, [this, batch] {
    batch->sealed = true;
    if (m_departure_batch_pkts_ != nullptr) {
      m_departure_batch_pkts_->observe(static_cast<double>(batch->packets.size()));
    }
    for (net::Packet& p : batch->packets) socket_->send(std::move(p));
  });
}

void RelayServer::add_participant(MeetingId meeting, ParticipantId id,
                                  net::Endpoint client_endpoint) {
  Meeting& m = meetings_[meeting];
  for (const auto& p : m.participants) {
    if (p.id == id) return;  // idempotent re-registration
  }
  Participant p;
  p.id = id;
  p.endpoint = client_endpoint;
  m.participants.push_back(std::move(p));
  by_sender_[client_endpoint] = {meeting, id};
}

void RelayServer::remove_participant(MeetingId meeting, ParticipantId id) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  auto& parts = it->second.participants;
  for (const auto& p : parts) {
    if (p.id == id) by_sender_.erase(p.endpoint);
  }
  // In-flight batches keep their own (shared) packet storage; erasing the
  // record only drops the departure pipeline state (FIFO floor + open-batch
  // handle). A later re-add starts a fresh floor — see the semantic note on
  // Departure in relay.h.
  std::erase_if(parts, [id](const Participant& p) { return p.id == id; });
}

void RelayServer::remove_meeting(MeetingId meeting) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (const auto& p : it->second.participants) by_sender_.erase(p.endpoint);
  for (const PeerLink& pl : it->second.peers) by_peer_.erase(pl.relay->endpoint());
  // Note: peers unlink us independently via their own remove_meeting.
  // Erasing the meeting reclaims all its departure pipeline state too.
  meetings_.erase(it);
}

void RelayServer::set_subscriptions(MeetingId meeting, ParticipantId receiver,
                                    std::vector<StreamSubscription> subs) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (auto& p : it->second.participants) {
    if (p.id != receiver) continue;
    p.video_scale.clear();
    for (const auto& s : subs) p.video_scale[s.origin] = s.scale;
    p.subscriptions_set = true;
    return;
  }
}

void RelayServer::link_peer(MeetingId meeting, RelayServer* peer) {
  if (peer == nullptr || peer == this) return;
  Meeting& m = meetings_[meeting];
  for (const PeerLink& pl : m.peers) {
    if (pl.relay == peer) return;
  }
  PeerLink link;
  link.relay = peer;
  m.peers.push_back(std::move(link));
  by_peer_[peer->endpoint()] = meeting;
}

void RelayServer::unlink_peer(MeetingId meeting, RelayServer* peer) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end() || peer == nullptr) return;
  std::erase_if(it->second.peers, [peer](const PeerLink& pl) { return pl.relay == peer; });
  by_peer_.erase(peer->endpoint());
}

void RelayServer::on_packet(const net::Packet& pkt) {
  // Probes are answered by the infrastructure itself, from any sender.
  if (pkt.kind == net::StreamKind::kProbe) {
    net::Packet reply;
    reply.dst = pkt.src;
    reply.l7_len = pkt.l7_len;
    reply.kind = net::StreamKind::kProbeReply;
    reply.seq = pkt.seq;
    socket_->send(std::move(reply));
    ++stats_.probes_answered;
    if (m_probes_answered_) m_probes_answered_->inc();
    return;
  }

  // Packet from a peer front-end (Meet inter-relay leg)?
  if (auto peer_it = by_peer_.find(pkt.src); peer_it != by_peer_.end()) {
    auto m_it = meetings_.find(peer_it->second);
    if (m_it != meetings_.end()) forward_media(m_it->second, pkt, /*from_peer=*/true);
    return;
  }

  // Packet from a registered participant?
  auto s_it = by_sender_.find(pkt.src);
  if (s_it == by_sender_.end()) return;  // stray traffic: drop silently
  auto m_it = meetings_.find(s_it->second.first);
  if (m_it == meetings_.end()) return;
  ++stats_.media_in;
  if (m_media_in_) m_media_in_->inc();
  forward_media(m_it->second, pkt, /*from_peer=*/false);
}

void RelayServer::forward_media(Meeting& meeting, const net::Packet& pkt, bool from_peer) {
  // Control packets (e.g. receiver reports) are routed to the participant
  // the report concerns (pkt.origin_id), not fanned out.
  if (pkt.kind == net::StreamKind::kControl) {
    for (auto& p : meeting.participants) {
      if (p.id != pkt.origin_id) continue;
      net::Packet copy = pkt;
      copy.dst = p.endpoint;
      send_delayed(std::move(copy), p.departure);
      ++stats_.control_forwarded;
      if (m_control_forwarded_) m_control_forwarded_->inc();
      return;
    }
    if (!from_peer) {
      for (PeerLink& pl : meeting.peers) {
        net::Packet copy = pkt;
        copy.dst = pl.relay->endpoint();
        send_delayed(std::move(copy), pl.departure);
        ++stats_.control_forwarded;
        if (m_control_forwarded_) m_control_forwarded_->inc();
      }
    }
    return;
  }

  std::int64_t copies = 0;
  for (auto& p : meeting.participants) {
    if (p.id == pkt.origin_id) continue;  // never echo back to the sender
    net::Packet copy = pkt;
    copy.dst = p.endpoint;
    if (pkt.kind == net::StreamKind::kVideo) {
      const auto scale_it = p.video_scale.find(pkt.origin_id);
      const double scale = scale_it != p.video_scale.end() ? scale_it->second
                           : p.subscriptions_set           ? 0.0
                                                           : 1.0;
      if (scale <= 0.0) continue;  // not subscribed
      if (scale < 1.0) {
        // Simulcast layer selection: a thinner encoding of the same stream.
        // The thinned stream is not pixel-decodable (used by the mobile and
        // gallery scenarios, which measure traffic/resources, not pixels).
        copy.l7_len = std::max<std::int64_t>(static_cast<std::int64_t>(
                                                 std::llround(static_cast<double>(pkt.l7_len) * scale)),
                                             24);
        copy.payload = nullptr;
      }
    }
    send_delayed(std::move(copy), p.departure);
    ++stats_.media_forwarded;
    ++copies;
  }

  // Fan out to peer front-ends exactly once (only for first-hop packets).
  if (!from_peer) {
    for (PeerLink& pl : meeting.peers) {
      net::Packet copy = pkt;
      copy.dst = pl.relay->endpoint();
      send_delayed(std::move(copy), pl.departure);
      ++stats_.media_forwarded;
      ++copies;
    }
  }
  if (m_media_forwarded_) {
    m_media_forwarded_->add(copies);
    m_fan_out_->observe(static_cast<double>(copies));
  }
}

}  // namespace vc::platform
