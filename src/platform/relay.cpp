#include "platform/relay.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vc::platform {

namespace {
/// Below this many receivers a pool dispatch costs more than it saves, so
/// shards run inline on the caller. Purely a performance cutoff: the staged
/// code path (and therefore every observable result) is the same either way.
constexpr std::size_t kMinReceiversForPool = 16;
/// Cap on recycled candidate batches kept around (serial needs one in
/// flight; a K-sharded relay pre-seeds K sub-batches per dispatch).
constexpr std::size_t kMaxBatchSpares = 16;
}  // namespace

RelayServer::RelayServer(net::Network& network, std::string name, GeoPoint location,
                         std::uint16_t media_port)
    : RelayServer(network, std::move(name), location, media_port, ForwardingDelay{}) {}

RelayServer::RelayServer(net::Network& network, std::string name, GeoPoint location,
                         std::uint16_t media_port, ForwardingDelay delay)
    : network_(network),
      host_(&network.add_host(std::move(name), location)),
      media_port_(media_port),
      delay_(delay) {
  socket_ = &host_->udp_bind(media_port_);
  socket_->on_receive([this](const net::Packet& pkt) { on_packet(pkt); });
}

void RelayServer::attach_metrics(MetricsRegistry& registry, const std::string& prefix) {
  m_media_in_ = &registry.counter(prefix + ".media_in");
  m_media_forwarded_ = &registry.counter(prefix + ".media_forwarded");
  m_peer_forwarded_ = &registry.counter(prefix + ".peer_forwarded");
  m_probes_answered_ = &registry.counter(prefix + ".probes_answered");
  m_control_forwarded_ = &registry.counter(prefix + ".control_forwarded");
  m_crash_dropped_ = &registry.counter(prefix + ".crash_dropped");
  m_crashes_ = &registry.counter(prefix + ".crashes");
  m_restarts_ = &registry.counter(prefix + ".restarts");
  m_trunk_in_ = &registry.counter(prefix + ".trunk_in");
  m_fan_out_ = &registry.histogram(prefix + ".fan_out");
  m_departure_batch_pkts_ = &registry.histogram(prefix + ".departure_batch_pkts");
}

void RelayServer::attach_shard_metrics(MetricsRegistry& registry, const std::string& prefix) {
  shard_registry_ = &registry;
  shard_prefix_ = prefix;
  rebuild_shard_metrics();
}

void RelayServer::rebuild_shard_metrics() {
  m_shard_fan_out_.clear();
  m_shard_imbalance_ = nullptr;
  if (shard_registry_ == nullptr || shards_ <= 0) return;
  m_shard_fan_out_.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    m_shard_fan_out_.push_back(
        &shard_registry_->counter(shard_prefix_ + ".shard" + std::to_string(s) + ".fan_out"));
  }
  m_shard_imbalance_ = &shard_registry_->histogram(shard_prefix_ + ".shard_imbalance");
}

void RelayServer::set_fan_out_sharding(ShardPool* pool, int shards) {
  pool_ = pool;
  shards_ = shards;
  if (shards_ > 0) scratch_.resize(static_cast<std::size_t>(shards_));
  rebuild_shard_metrics();
}

SimTime RelayServer::departure_candidate() {
  const SimDuration d =
      delay_.base + millis_f(network_.rng().exponential(delay_.jitter_mean_ms));
  return network_.now() + d;
}

void RelayServer::send_with_candidate(net::Packet pkt, Departure& dep, SimTime candidate) {
  // FIFO per destination: a later packet never departs before an earlier one.
  // Under load the floor dominates the jittered delay, so consecutive
  // packets to one receiver collapse onto the same tick — those ride the
  // destination's open batch instead of scheduling fresh events.
  const SimTime departure = candidate < dep.floor ? dep.floor : candidate;
  dep.floor = departure;
  if (dep.open && !dep.open->sealed && dep.open_tick == departure) {
    dep.open->packets.push_back(std::move(pkt));
    return;
  }
  auto batch = std::make_shared<DepartureBatch>();
  batch->packets.push_back(std::move(pkt));
  dep.open = batch;
  dep.open_tick = departure;
  schedule_departure(departure, std::move(batch));
}

void RelayServer::transmit(net::Packet&& pkt) {
  if (!trunk_routes_.empty()) {
    const auto it = trunk_routes_.find(pkt.dst);
    if (it != trunk_routes_.end()) {
      it->second(std::move(pkt));
      return;
    }
  }
  socket_->send(std::move(pkt));
}

void RelayServer::schedule_departure(SimTime tick, std::shared_ptr<DepartureBatch> batch) {
  network_.loop().schedule_at(tick, [this, batch = std::move(batch)] {
    batch->sealed = true;
    if (m_departure_batch_pkts_ != nullptr) {
      m_departure_batch_pkts_->observe(static_cast<double>(batch->packets.size()));
    }
    if (tracer_ != nullptr) {
      tracer_->instant("relay.depart", network_.now(), static_cast<double>(batch->packets.size()));
    }
    for (net::Packet& p : batch->packets) transmit(std::move(p));
  });
}

void RelayServer::schedule_candidate_departure(SimTime tick,
                                               std::shared_ptr<DepartureBatch> batch) {
  network_.loop().schedule_at(tick, [this, batch = std::move(batch)]() mutable {
    batch->sealed = true;
    if (m_departure_batch_pkts_ != nullptr) {
      m_departure_batch_pkts_->observe(static_cast<double>(batch->packets.size()));
    }
    if (tracer_ != nullptr) {
      tracer_->instant("relay.depart", network_.now(), static_cast<double>(batch->packets.size()));
    }
    for (net::Packet& p : batch->packets) transmit(std::move(p));
    // Recycle only when this event holds the sole reference: a destination
    // whose open-batch handle still points here may yet append at this tick
    // (zero-delay pipelines), so its batch must stay sealed, not reused.
    if (batch.use_count() == 1 && batch_spares_.size() < kMaxBatchSpares) {
      batch->packets.clear();
      batch->sealed = false;
      batch_spares_.push_back(std::move(batch));
    }
  });
}

std::shared_ptr<RelayServer::DepartureBatch> RelayServer::acquire_batch(
    std::size_t reserve_hint) {
  if (!batch_spares_.empty()) {
    std::shared_ptr<DepartureBatch> b = std::move(batch_spares_.back());
    batch_spares_.pop_back();
    return b;  // empty and unsealed, with its packet capacity retained
  }
  auto b = std::make_shared<DepartureBatch>();
  b->packets.reserve(reserve_hint);
  return b;
}

void RelayServer::set_trunk_egress(net::Endpoint peer_endpoint,
                                   std::function<void(net::Packet)> send) {
  if (!send) {
    trunk_routes_.erase(peer_endpoint);
    return;
  }
  trunk_routes_[peer_endpoint] = std::move(send);
}

void RelayServer::ingest_trunk(const net::Packet& pkt) {
  if (crashed_) {
    ++stats_.crash_dropped;
    if (m_crash_dropped_) m_crash_dropped_->inc();
    return;
  }
  // A trunk multiplexes many meetings onto one relay-pair link, so demux is
  // by the packet's meeting tag rather than by source endpoint (the by_peer_
  // map can bind an endpoint to only one meeting).
  auto m_it = meetings_.find(pkt.meeting);
  if (m_it == meetings_.end()) return;  // meeting re-homed or gone: drop
  ++stats_.trunk_in;
  if (m_trunk_in_) m_trunk_in_->inc();
  forward_media(m_it->second, pkt, /*from_peer=*/true);
}

void RelayServer::add_participant(MeetingId meeting, ParticipantId id,
                                  net::Endpoint client_endpoint) {
  Meeting& m = meetings_[meeting];
  m.id = meeting;
  for (const auto& p : m.participants) {
    if (p.id == id) return;  // idempotent re-registration
  }
  Participant p;
  p.id = id;
  p.endpoint = client_endpoint;
  m.participants.push_back(std::move(p));
  by_sender_[client_endpoint] = {meeting, id};
}

void RelayServer::remove_participant(MeetingId meeting, ParticipantId id) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  auto& parts = it->second.participants;
  for (const auto& p : parts) {
    if (p.id == id) by_sender_.erase(p.endpoint);
  }
  // In-flight batches keep their own (shared) packet storage; erasing the
  // record only drops the departure pipeline state (FIFO floor + open-batch
  // handle). A later re-add starts a fresh floor — see the semantic note on
  // Departure in relay.h.
  std::erase_if(parts, [id](const Participant& p) { return p.id == id; });
}

void RelayServer::remove_meeting(MeetingId meeting) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (const auto& p : it->second.participants) by_sender_.erase(p.endpoint);
  for (const PeerLink& pl : it->second.peers) by_peer_.erase(pl.relay->endpoint());
  // Note: peers unlink us independently via their own remove_meeting.
  // Erasing the meeting reclaims all its departure pipeline state too.
  meetings_.erase(it);
}

void RelayServer::set_subscriptions(MeetingId meeting, ParticipantId receiver,
                                    std::vector<StreamSubscription> subs) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (auto& p : it->second.participants) {
    if (p.id != receiver) continue;
    p.video_scale.clear();
    for (const auto& s : subs) p.video_scale[s.origin] = s.scale;
    p.subscriptions_set = true;
    return;
  }
}

void RelayServer::link_peer(MeetingId meeting, RelayServer* peer) {
  if (peer == nullptr || peer == this) return;
  Meeting& m = meetings_[meeting];
  m.id = meeting;
  for (const PeerLink& pl : m.peers) {
    if (pl.relay == peer) return;
  }
  PeerLink link;
  link.relay = peer;
  m.peers.push_back(std::move(link));
  by_peer_[peer->endpoint()] = meeting;
}

void RelayServer::unlink_peer(MeetingId meeting, RelayServer* peer) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end() || peer == nullptr) return;
  std::erase_if(it->second.peers, [peer](const PeerLink& pl) { return pl.relay == peer; });
  by_peer_.erase(peer->endpoint());
}

void RelayServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++stats_.crashes;
  if (m_crashes_) m_crashes_->inc();
  if (tracer_ != nullptr) tracer_->instant("relay.crash", network_.now(), 0.0);
  // A process crash loses all session state: rejoining clients must
  // re-register and have their subscriptions re-pushed by the control plane.
  // (In-flight departure batches own their packet storage and fire normally
  // — those packets already left this process.)
  meetings_.clear();
  by_sender_.clear();
  by_peer_.clear();
}

void RelayServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++stats_.restarts;
  if (m_restarts_) m_restarts_->inc();
  if (tracer_ != nullptr) tracer_->instant("relay.restart", network_.now(), 0.0);
}

void RelayServer::on_packet(const net::Packet& pkt) {
  if (crashed_) {
    // Dead process: everything — probes included — vanishes. No RNG draw,
    // no reply, just the outage-loss counter.
    ++stats_.crash_dropped;
    if (m_crash_dropped_) m_crash_dropped_->inc();
    return;
  }
  // Probes are answered by the infrastructure itself, from any sender.
  if (pkt.kind == net::StreamKind::kProbe) {
    net::Packet reply;
    reply.dst = pkt.src;
    reply.l7_len = pkt.l7_len;
    reply.kind = net::StreamKind::kProbeReply;
    reply.seq = pkt.seq;
    socket_->send(std::move(reply));
    ++stats_.probes_answered;
    if (m_probes_answered_) m_probes_answered_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant("relay.probe", network_.now(), static_cast<double>(pkt.l7_len));
    }
    return;
  }

  // Packet from a peer front-end (Meet inter-relay leg)?
  if (auto peer_it = by_peer_.find(pkt.src); peer_it != by_peer_.end()) {
    auto m_it = meetings_.find(peer_it->second);
    if (m_it != meetings_.end()) forward_media(m_it->second, pkt, /*from_peer=*/true);
    return;
  }

  // Packet from a registered participant?
  auto s_it = by_sender_.find(pkt.src);
  if (s_it == by_sender_.end()) return;  // stray traffic: drop silently
  auto m_it = meetings_.find(s_it->second.first);
  if (m_it == meetings_.end()) return;
  ++stats_.media_in;
  if (m_media_in_) m_media_in_->inc();
  forward_media(m_it->second, pkt, /*from_peer=*/false);
}

template <class NewBatchSink, class OnCandidate, class OnAppend>
std::int64_t RelayServer::fan_out_range(Meeting& meeting, const net::Packet& pkt,
                                        SimTime candidate, std::size_t begin, std::size_t end,
                                        NewBatchSink&& sink, OnCandidate&& on_candidate,
                                        OnAppend&& on_append) {
  std::int64_t copies = 0;
  auto& parts = meeting.participants;
  for (std::size_t i = begin; i < end; ++i) {
    Participant& p = parts[i];
    if (p.id == pkt.origin_id) continue;  // never echo back to the sender
    net::Packet copy = pkt;
    copy.dst = p.endpoint;
    if (pkt.kind == net::StreamKind::kVideo) {
      // video_scale is only ever populated together with subscriptions_set,
      // so the (common) no-subscriptions receiver skips the hash probe.
      double scale = 1.0;
      if (p.subscriptions_set) {
        const auto scale_it = p.video_scale.find(pkt.origin_id);
        scale = scale_it != p.video_scale.end() ? scale_it->second : 0.0;
      }
      if (scale <= 0.0) continue;  // not subscribed
      if (scale < 1.0) {
        // Simulcast layer selection: a thinner encoding of the same stream.
        // The thinned stream is not pixel-decodable (used by the mobile and
        // gallery scenarios, which measure traffic/resources, not pixels).
        copy.l7_len = std::max<std::int64_t>(
            static_cast<std::int64_t>(
                std::llround(static_cast<double>(pkt.l7_len) * scale)),
            24);
        copy.payload = nullptr;
      }
    }
    // The destination's departure pipeline: depart at the ingest's shared
    // candidate tick unless this flow's FIFO floor pushes the copy later.
    Departure& dep = p.departure;
    if (dep.floor < candidate) {
      // Unconstrained: the copy rides the ingest-wide candidate batch. The
      // caller repoints dep.open there (under sharding only the merge step
      // knows the spliced batch), so open_tick is updated here to match.
      dep.floor = candidate;
      dep.open_tick = candidate;
      on_candidate(dep, std::move(copy));
    } else {
      const SimTime departure = dep.floor;
      if (dep.open && !dep.open->sealed && dep.open_tick == departure) {
        on_append(*dep.open, std::move(copy));
      } else {
        auto batch = std::make_shared<DepartureBatch>();
        batch->packets.push_back(std::move(copy));
        dep.open = batch;
        dep.open_tick = departure;
        sink(departure, std::move(batch));
      }
    }
    ++copies;
  }
  return copies;
}

std::int64_t RelayServer::fan_out_media(Meeting& meeting, const net::Packet& pkt,
                                        SimTime candidate) {
  const std::size_t n = meeting.participants.size();
  if (shards_ <= 0) {
    // Serial path: newly opened per-destination batches are scheduled as
    // they open, unconstrained copies accumulate into one ingest-wide batch
    // scheduled after the loop. Appends never schedule, so this is the same
    // schedule_at sequence the staged path's merge reproduces.
    std::shared_ptr<DepartureBatch> cand;
    const std::int64_t copies = fan_out_range(
        meeting, pkt, candidate, 0, n,
        [this](SimTime tick, std::shared_ptr<DepartureBatch> batch) {
          schedule_departure(tick, std::move(batch));
        },
        [this, &cand, n](Departure& dep, net::Packet&& copy) {
          if (!cand) cand = acquire_batch(n);
          dep.open = cand;
          cand->packets.push_back(std::move(copy));
        },
        [](DepartureBatch& target, net::Packet&& copy) {
          target.packets.push_back(std::move(copy));
        });
    if (cand) schedule_candidate_departure(candidate, std::move(cand));
    return copies;
  }

  const int k = shards_;
  const bool pooled = pool_ != nullptr && k > 1 && n >= kMinReceiversForPool;
  // Pre-seed every shard's candidate sub-batch on the loop thread: workers
  // then run allocation-free in the steady state (the merge splice leaves
  // each retained sub-batch empty with its capacity intact).
  for (int s = 0; s < k; ++s) {
    ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
    sc.staged.clear();
    sc.appends.clear();
    sc.cand_deps.clear();
    if (!sc.cand) sc.cand = acquire_batch(n / static_cast<std::size_t>(k) + 1);
  }
  auto shard_job = [&](int s) {
    ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
    // Contiguous join-order partition: shard s owns [s*n/k, (s+1)*n/k).
    // Participants are partitioned, and each Participant owns its departure
    // pipeline inline, so shards touch disjoint mutable state; the only
    // shared object a worker may see — a previous ingest's candidate batch,
    // via dep.open — is read-only here (appends to it are staged).
    const std::size_t begin = n * static_cast<std::size_t>(s) / static_cast<std::size_t>(k);
    const std::size_t end = n * (static_cast<std::size_t>(s) + 1) / static_cast<std::size_t>(k);
    sc.copies = fan_out_range(
        meeting, pkt, candidate, begin, end,
        [&sc](SimTime tick, std::shared_ptr<DepartureBatch> batch) {
          sc.staged.push_back(StagedBatch{tick, std::move(batch)});
        },
        [&sc](Departure& dep, net::Packet&& copy) {
          sc.cand_deps.push_back(&dep);  // repointed to the spliced batch below
          sc.cand->packets.push_back(std::move(copy));
        },
        // Appends only need staging when shards truly run concurrently (the
        // target may be a previous ingest's batch shared across shards).
        // Inline shards execute sequentially in shard order — already the
        // serial join order — so they append in place, identically.
        [&sc, pooled](DepartureBatch& target, net::Packet&& copy) {
          if (pooled) {
            sc.appends.push_back(StagedAppend{&target, std::move(copy)});
          } else {
            target.packets.push_back(std::move(copy));
          }
        });
  };
  if (pooled) {
    pool_->run(k, shard_job);  // full fork-join: all shard writes visible below
  } else {
    for (int s = 0; s < k; ++s) shard_job(s);
  }

  // Deterministic merge, all in shard-index order and join order within a
  // shard — under the contiguous partition that concatenation IS the serial
  // path's join order. Staged appends land first (they extend batches from
  // earlier ingests, exactly where the serial loop would have put them),
  // then staged per-destination batches are scheduled — the serial
  // schedule_at sequence, so slot/EventId assignment and every downstream
  // tiebreak are byte-identical to K=0.
  std::int64_t copies = 0;
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = 0;
  for (int s = 0; s < k; ++s) {
    ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
    for (StagedAppend& a : sc.appends) a.target->packets.push_back(std::move(a.pkt));
    sc.appends.clear();
    for (StagedBatch& sb : sc.staged) schedule_departure(sb.tick, std::move(sb.batch));
    sc.staged.clear();
    copies += sc.copies;
    lo = std::min(lo, sc.copies);
    hi = std::max(hi, sc.copies);
    if (!m_shard_fan_out_.empty()) m_shard_fan_out_[static_cast<std::size_t>(s)]->add(sc.copies);
    if (tracer_ != nullptr && tracer_->shard_detail()) {
      // Per-shard merge detail is K-dependent (outside the determinism
      // contract), so it only records behind the opt-in shard_detail flag.
      tracer_->instant("relay.shard_merge", network_.now(), static_cast<double>(sc.copies));
    }
  }
  // Splice the shard sub-batches into the one ingest-wide candidate batch
  // (global join order again), repoint every candidate destination's open-
  // batch handle at it, and schedule it once — matching the serial path's
  // single candidate event, content and histogram included.
  std::shared_ptr<DepartureBatch> cand;
  for (int s = 0; s < k; ++s) {
    ShardScratch& sc = scratch_[static_cast<std::size_t>(s)];
    if (sc.cand && !sc.cand->packets.empty()) {
      if (!cand) {
        cand = std::move(sc.cand);
      } else {
        cand->packets.insert(cand->packets.end(),
                             std::make_move_iterator(sc.cand->packets.begin()),
                             std::make_move_iterator(sc.cand->packets.end()));
        sc.cand->packets.clear();
      }
    }
    for (Departure* dep : sc.cand_deps) dep->open = cand;
    sc.cand_deps.clear();
  }
  if (cand) schedule_candidate_departure(candidate, std::move(cand));
  if (m_shard_imbalance_ != nullptr) m_shard_imbalance_->observe(static_cast<double>(hi - lo));
  return copies;
}

void RelayServer::forward_media(Meeting& meeting, const net::Packet& pkt, bool from_peer) {
  // ONE jitter draw per ingested packet, made here on the event-loop thread
  // before any fan-out work: all forwarded copies of this packet share the
  // candidate departure time (per-destination FIFO floors still apply on
  // top). This models relay processing delay as a property of the ingest
  // pipeline rather than of each egress copy, and it is the determinism
  // linchpin of sharding — shard workers never touch the RNG, so the random
  // stream is identical at every shard count K. It is also the dominant
  // per-packet cost saving: the old per-copy draw paid an exponential (a
  // log()) for every one of the N−1 copies.
  const SimTime candidate = departure_candidate();

  // Control packets (e.g. receiver reports) are routed to the participant
  // the report concerns (pkt.origin_id), not fanned out.
  if (pkt.kind == net::StreamKind::kControl) {
    for (auto& p : meeting.participants) {
      if (p.id != pkt.origin_id) continue;
      net::Packet copy = pkt;
      copy.dst = p.endpoint;
      send_with_candidate(std::move(copy), p.departure, candidate);
      ++stats_.control_forwarded;
      if (m_control_forwarded_) m_control_forwarded_->inc();
      return;
    }
    if (!from_peer) {
      for (PeerLink& pl : meeting.peers) {
        net::Packet copy = pkt;
        copy.dst = pl.relay->endpoint();
        copy.meeting = meeting.id;
        send_with_candidate(std::move(copy), pl.departure, candidate);
        ++stats_.control_forwarded;
        if (m_control_forwarded_) m_control_forwarded_->inc();
      }
    }
    return;
  }

  const std::int64_t media_copies = fan_out_media(meeting, pkt, candidate);
  stats_.media_forwarded += media_copies;
  if (tracer_ != nullptr) {
    // Ingest → shared candidate departure tick: the relay's processing
    // pipeline window for this packet, annotated with the fan-out width.
    tracer_->span("relay.ingest", network_.now(), candidate, static_cast<double>(media_copies));
  }

  // Fan out to peer front-ends exactly once (only for first-hop packets).
  // Peer forwards are a different beast from participant copies — one link
  // carries the whole meeting onward — so they are counted separately and
  // excluded from the per-receiver fan_out distribution.
  std::int64_t peer_copies = 0;
  if (!from_peer) {
    for (PeerLink& pl : meeting.peers) {
      net::Packet copy = pkt;
      copy.dst = pl.relay->endpoint();
      copy.meeting = meeting.id;
      send_with_candidate(std::move(copy), pl.departure, candidate);
      ++peer_copies;
    }
    stats_.peer_forwarded += peer_copies;
  }

  if (m_media_forwarded_) m_media_forwarded_->add(media_copies);
  if (m_peer_forwarded_ && peer_copies > 0) m_peer_forwarded_->add(peer_copies);
  if (m_fan_out_) m_fan_out_->observe(static_cast<double>(media_copies));
}

}  // namespace vc::platform
