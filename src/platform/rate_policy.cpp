#include "platform/rate_policy.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>

namespace vc::platform {

std::string_view platform_name(PlatformId id) {
  switch (id) {
    case PlatformId::kZoom: return "Zoom";
    case PlatformId::kWebex: return "Webex";
    case PlatformId::kMeet: return "Meet";
  }
  return "?";
}

const RateProfile& rate_profile(PlatformId id) {
  // Sources (paper sections): Fig 15 for cloud send rates and variability;
  // Section 4.3.1 for Meet's two-party burst and Zoom's P2P bump; Fig 17–18
  // for adaptation floors/agility; Section 5, Fig 19b and Table 4 for the
  // mobile subscription scales.
  static const RateProfile kZoom{
      .video_two_party = DataRate::mbps(1.0),
      .video_multi_party = DataRate::kbps(720),
      .low_motion_factor = 0.93,   // "least difference (5–10%)"
      .session_sigma = 0.04,
      .in_session_sigma = 0.02,
      .min_video_rate = DataRate::kbps(280),  // holds QoE until ~250 Kbps cap
      .loss_backoff = 0.75,
      .clean_recovery = 1.04,
      .low_end_scale = 1.0,        // "sticks to a default rate" on J3
      .gallery_tile_scale = 0.45,  // one tile ≈ 0.33 Mbps, four ≈ 0.65 (Table 4)
      .gallery_effective = true,
      .preview_scale = 0.0,
      .background_scale = 0.015,   // small rate bump in full screen as N grows
      .mobile_main_rate = DataRate::kbps(850),
  };
  static const RateProfile kWebex{
      .video_two_party = DataRate::mbps(1.9),
      .video_multi_party = DataRate::mbps(1.9),  // highest multi-user rate
      .low_motion_factor = 0.52,   // low motion "almost halves" bandwidth
      .session_sigma = 0.01,       // "virtually no fluctuation"
      .in_session_sigma = 0.005,
      .min_video_rate = DataRate::mbps(1.4),  // barely adapts → stalls <1 Mbps
      .loss_backoff = 0.97,
      .clean_recovery = 1.01,
      .low_end_scale = 0.5,        // J3 served 0.9 vs S10 1.76 Mbps
      .gallery_tile_scale = 0.0,   // budget-based, see subscriptions()
      .gallery_effective = true,
      .preview_scale = 0.0,
      .background_scale = 0.0,
      .mobile_main_rate = DataRate::mbps(1.76),
  };
  static const RateProfile kMeet{
      .video_two_party = DataRate::mbps(1.8),  // 1.6–2.0 Mbps two-party burst
      .video_multi_party = DataRate::kbps(640),
      .low_motion_factor = 0.8,    // ~20% reduction
      .session_sigma = 0.18,       // "most dynamic rate changes"
      .in_session_sigma = 0.08,
      .min_video_rate = DataRate::kbps(180),  // most graceful degradation
      .loss_backoff = 0.85,
      .clean_recovery = 1.02,
      .low_end_scale = 1.0,        // ignores target device
      .gallery_tile_scale = 0.0,
      .gallery_effective = false,  // no gallery support
      .preview_scale = 0.035,      // small always-on previews (Table 4)
      .background_scale = 0.0,
      .mobile_main_rate = DataRate::mbps(2.05),
  };
  switch (id) {
    case PlatformId::kZoom: return kZoom;
    case PlatformId::kWebex: return kWebex;
    case PlatformId::kMeet: return kMeet;
  }
  throw std::invalid_argument{"unknown platform"};
}

abr::TierLadder tier_ladder(PlatformId id) {
  const RateProfile& p = rate_profile(id);
  // Geometric rungs floor → two-party max; the 1.5× step matches typical
  // simulcast layer spacing and gives Zoom 5, Webex 2 and Meet 8 rungs.
  std::vector<DataRate> rates;
  DataRate r = p.min_video_rate;
  while (static_cast<double>(r.bits_per_second()) * 1.0 <
         0.95 * static_cast<double>(p.video_two_party.bits_per_second())) {
    rates.push_back(r);
    r = r * 1.5;
  }
  rates.push_back(p.video_two_party);

  // Frame height each budget buys, spread over the canonical resolutions.
  static constexpr int kHeights[] = {144, 180, 240, 288, 360, 480, 720};
  constexpr int kHeightCount = static_cast<int>(std::size(kHeights));
  abr::TierLadder ladder;
  const int n = static_cast<int>(rates.size());
  for (int i = 0; i < n; ++i) {
    const int hi = n <= 1 ? kHeightCount - 1 : (i * (kHeightCount - 1) + (n - 1) / 2) / (n - 1);
    ladder.tiers.push_back(abr::Tier{rates[static_cast<std::size_t>(i)], kHeights[hi]});
  }
  return ladder;
}

DataRate session_video_rate(PlatformId id, int participants, MotionClass motion, Rng& rng) {
  if (participants < 2) throw std::invalid_argument{"a session needs at least two participants"};
  const RateProfile& p = rate_profile(id);
  DataRate base = participants == 2 ? p.video_two_party : p.video_multi_party;
  if (motion == MotionClass::kLowMotion) base = base * p.low_motion_factor;
  const double jitter = p.session_sigma > 0 ? rng.lognormal(0.0, p.session_sigma) : 1.0;
  return base * jitter;
}

std::vector<StreamSubscription> subscriptions(PlatformId id, ViewMode view, DeviceClass device,
                                              const std::vector<SenderInfo>& senders) {
  const RateProfile& p = rate_profile(id);
  std::vector<StreamSubscription> subs;
  if (senders.empty() || view == ViewMode::kAudioOnly) return subs;

  const double device_scale = device == DeviceClass::kMobileLowEnd ? p.low_end_scale : 1.0;
  const int tiles = std::min<int>(4, static_cast<int>(senders.size()));

  // Meet has no gallery: both views render main + previews (footnote 6).
  const bool gallery = view == ViewMode::kGallery && p.gallery_effective;

  if (!gallery) {
    // Full screen: the first sender is the displayed main stream.
    subs.push_back(StreamSubscription{senders[0].id, device_scale});
    for (std::size_t i = 1; i < senders.size(); ++i) {
      double extra = 0.0;
      if (p.preview_scale > 0 && static_cast<int>(i) < tiles) extra = p.preview_scale;
      if (p.background_scale > 0) extra = std::max(extra, p.background_scale);
      if (extra > 0) subs.push_back(StreamSubscription{senders[i].id, extra * device_scale});
    }
    return subs;
  }

  if (id == PlatformId::kWebex) {
    bool mobile_camera_present = false;
    for (const auto& s : senders) {
      if (s.device != DeviceClass::kCloudVm) mobile_camera_present = true;
    }
    if (mobile_camera_present) {
      // With phone cameras in the gallery, Webex abandons its budget and
      // serves each tile at half rate — markedly less data-efficient
      // (Section 5: the J3's download more than doubles in LM-Video-View).
      for (int i = 0; i < tiles; ++i) {
        subs.push_back(StreamSubscription{senders[static_cast<std::size_t>(i)].id,
                                          0.5 * device_scale});
      }
      return subs;
    }
    // Gallery budget split across tiles — and the budget itself *shrinks*
    // with more tiles, the paper's counter-intuitive rate decrease with
    // visible quality degradation (Table 4: 0.57 → 0.43 Mbps).
    const double budget_scale = std::max(0.18, 0.30 * (1.0 - 0.08 * (tiles - 1)));
    const double per_tile = budget_scale / tiles * device_scale;
    for (int i = 0; i < tiles; ++i) {
      subs.push_back(StreamSubscription{senders[static_cast<std::size_t>(i)].id, per_tile});
    }
    return subs;
  }

  // Zoom-style gallery: each tile at a lower simulcast layer; smaller tiles
  // (more participants) use lower layers still, so total rate roughly
  // doubles from one tile to four rather than quadrupling (Table 4).
  const double tile_scale = p.gallery_tile_scale / std::sqrt(static_cast<double>(tiles));
  for (int i = 0; i < tiles; ++i) {
    subs.push_back(
        StreamSubscription{senders[static_cast<std::size_t>(i)].id, tile_scale * device_scale});
  }
  return subs;
}

}  // namespace vc::platform
