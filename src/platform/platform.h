// Platform abstraction for the three videoconferencing systems under test.
//
// Everything the paper could only observe from outside — relay placement,
// endpoint churn, designated media ports, rate policy, view-dependent
// subscriptions, bandwidth adaptation — is encoded here as explicit policy,
// so the measurement harness can rediscover it blindly from traffic, the way
// the paper did.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "abr/abr.h"
#include "common/units.h"
#include "net/host.h"

namespace vc::platform {

enum class PlatformId : std::uint8_t { kZoom = 0, kWebex = 1, kMeet = 2 };

std::string_view platform_name(PlatformId id);

/// Receiver device class; platforms differ in whether they adapt to it
/// (Section 5: only Webex lowers its rate for the low-end J3).
enum class DeviceClass : std::uint8_t { kCloudVm = 0, kMobileHighEnd = 1, kMobileLowEnd = 2 };

/// Client UI view (Section 5): full-screen speaker, gallery (≤4 tiles), or
/// screen off / audio-only.
enum class ViewMode : std::uint8_t { kFullScreen = 0, kGallery = 1, kAudioOnly = 2 };

using MeetingId = std::uint64_t;
using ParticipantId = std::uint32_t;

/// What a client registers with the platform when joining.
struct ClientRef {
  net::Host* host = nullptr;
  /// The client's local media port (where relayed streams should be sent).
  std::uint16_t media_port = 0;
  DeviceClass device = DeviceClass::kCloudVm;
  ViewMode view = ViewMode::kFullScreen;
  /// True if this participant sends video (camera/feed on).
  bool sends_video = true;
};

/// Routing handed to a client at join time (and on re-routing events, e.g.
/// Zoom's P2P ↔ relay switch when the 3rd participant arrives).
struct RouteInfo {
  net::Endpoint media_endpoint;
  bool p2p = false;
};

/// Per-(receiver, origin) forwarding decision made by the platform's
/// subscription policy: `scale` multiplies the origin's stream rate
/// (1 = full stream, 0.25 = low simulcast layer, 0 = not forwarded).
struct StreamSubscription {
  ParticipantId origin = 0;
  double scale = 1.0;
};

/// Cross-cutting construction options shared by the three platforms.
/// Everything here is an execution/sim knob, not wire-observable policy —
/// PlatformTraits stays what the paper could see from outside.
struct PlatformConfig {
  std::uint64_t seed = 7;
  /// Intra-session relay fan-out sharding: every relay the platform
  /// allocates partitions one meeting's receivers into this many contiguous
  /// join-order shards per ingested packet. 0 (default) = plain serial
  /// fan-out. Any value produces byte-identical results (the sharded path's
  /// contract — see RelayServer); only wall-clock changes.
  int fan_out_shards = 0;
  /// Worker threads backing the shard pool. -1 = auto-size for this machine
  /// (ShardPool::auto_workers: never more than the spare hardware threads,
  /// so a single-core host gets 0). 0 = run shards inline on the event-loop
  /// thread — same staged path, no threads.
  int shard_workers = -1;
  /// Client-side ABR this platform hands to clients that don't configure
  /// their own (VcaClient picks it up when its Config.abr.kind is kNone).
  /// Defaults to kNone, so existing runs stay byte-identical.
  abr::AbrConfig default_client_abr{};
};

/// Constants that identify a platform on the wire.
struct PlatformTraits {
  PlatformId id = PlatformId::kZoom;
  /// Designated media port of service endpoints (Section 4.2): UDP/8801
  /// Zoom, UDP/9000 Webex, UDP/19305 Meet.
  std::uint16_t media_port = 0;
  /// Zoom activates direct peer-to-peer streaming for two-party calls.
  bool p2p_for_two = false;
  /// Gallery view supported natively (Meet has none; Section 5).
  bool supports_gallery = true;
  /// Maximum concurrently displayed video tiles (all three show ≤4).
  int max_tiles = 4;
  /// Audio stream rate (Section 4.4: Zoom 90, Webex 45, Meet 40 Kbps).
  DataRate audio_rate;
};

class VcaPlatform {
 public:
  virtual ~VcaPlatform() = default;

  virtual const PlatformTraits& traits() const = 0;

  /// Creates a meeting hosted by `host`; the host is participant 1.
  /// `on_route` is invoked immediately with initial routing and again on any
  /// re-route.
  virtual MeetingId create_meeting(const ClientRef& host,
                                   std::function<void(RouteInfo)> on_route) = 0;

  /// Joins an existing meeting. Returns the new participant's id.
  virtual ParticipantId join(MeetingId meeting, const ClientRef& client,
                             std::function<void(RouteInfo)> on_route) = 0;

  virtual void leave(MeetingId meeting, ParticipantId participant) = 0;
  virtual void end_meeting(MeetingId meeting) = 0;

  /// Updates a participant's view mode (drives subscription changes).
  virtual void set_view_mode(MeetingId meeting, ParticipantId participant, ViewMode view) = 0;

  /// Current roster size (what the client's UI shows — used by clients for
  /// N-dependent rate policy). 0 for unknown meetings.
  virtual int participant_count(MeetingId meeting) const = 0;
};

}  // namespace vc::platform
