#include "platform/base_platform.h"

#include <algorithm>
#include <stdexcept>

namespace vc::platform {

BasePlatform::BasePlatform(net::Network& network, PlatformTraits traits, std::uint64_t seed)
    : BasePlatform(network, traits, PlatformConfig{.seed = seed}) {}

BasePlatform::BasePlatform(net::Network& network, PlatformTraits traits,
                           const PlatformConfig& config)
    : network_(network),
      traits_(traits),
      config_(config),
      allocator_(network, traits.id, traits.media_port, config.seed) {
  if (config.fan_out_shards > 0) {
    const int workers = config.shard_workers >= 0
                            ? config.shard_workers
                            : ShardPool::auto_workers(config.fan_out_shards);
    if (workers > 0) shard_pool_ = std::make_unique<ShardPool>(workers);
    allocator_.set_fan_out_sharding(shard_pool_.get(), config.fan_out_shards);
  }
}

MeetingId BasePlatform::create_meeting(const ClientRef& host,
                                       std::function<void(RouteInfo)> on_route) {
  if (host.host == nullptr || host.media_port == 0) throw std::invalid_argument{"bad host client"};
  Meeting meeting;
  meeting.id = next_meeting_++;
  Member m;
  m.id = meeting.next_participant++;
  m.ref = host;
  m.on_route = std::move(on_route);
  meeting.members.push_back(std::move(m));
  auto [it, _] = meetings_.emplace(meeting.id, std::move(meeting));
  assign_routes(it->second);
  refresh_subscriptions(it->second);
  return it->first;
}

ParticipantId BasePlatform::join(MeetingId meeting, const ClientRef& client,
                                 std::function<void(RouteInfo)> on_route) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) throw std::invalid_argument{"no such meeting"};
  if (client.host == nullptr || client.media_port == 0) throw std::invalid_argument{"bad client"};
  Member m;
  m.id = it->second.next_participant++;
  m.ref = client;
  m.on_route = std::move(on_route);
  it->second.members.push_back(std::move(m));
  assign_routes(it->second);
  refresh_subscriptions(it->second);
  return it->second.members.back().id;
}

void BasePlatform::leave(MeetingId meeting, ParticipantId participant) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (auto& m : it->second.members) {
    if (m.id == participant && m.relay != nullptr) m.relay->remove_participant(meeting, participant);
  }
  if (placer_ != nullptr) placer_->on_member_left(meeting, participant);
  std::erase_if(it->second.members, [&](const Member& m) { return m.id == participant; });
  if (it->second.members.empty()) {
    end_meeting(meeting);
    return;
  }
  refresh_subscriptions(it->second);
}

void BasePlatform::end_meeting(MeetingId meeting) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (RelayServer* r : it->second.relays) r->remove_meeting(meeting);
  if (placer_ != nullptr) placer_->on_meeting_ended(meeting);
  meetings_.erase(it);
}

void BasePlatform::set_view_mode(MeetingId meeting, ParticipantId participant, ViewMode view) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return;
  for (auto& m : it->second.members) {
    if (m.id == participant) m.ref.view = view;
  }
  refresh_subscriptions(it->second);
}

int BasePlatform::participant_count(MeetingId meeting) const {
  auto it = meetings_.find(meeting);
  return it == meetings_.end() ? 0 : static_cast<int>(it->second.members.size());
}

void BasePlatform::notify_relay_crashed(RelayServer* relay) {
  if (relay == nullptr) return;
  // The placer sees the crash first: it releases the dead relay's load and
  // precomputes spare-capacity failover targets while it still knows which
  // members the relay was serving (the loop below erases that binding).
  if (placer_ != nullptr) placer_->on_relay_crashed(relay);
  for (auto& [id, meeting] : meetings_) {
    for (auto& m : meeting.members) {
      if (m.relay != relay) continue;
      m.relay = nullptr;
      m.on_route(RouteInfo{});  // unspecified endpoint: connection lost
    }
  }
}

void BasePlatform::fleet_assign(Meeting& meeting) {
  for (auto& m : meeting.members) {
    if (m.relay != nullptr) continue;
    RelayServer* relay = placer_->home_for(meeting.id, m.id, m.ref.host->location());
    if (relay == nullptr) continue;  // no capacity: member stays unrouted
    relay->add_participant(meeting.id, m.id, client_endpoint(m));
    m.relay = relay;
    if (std::find(meeting.relays.begin(), meeting.relays.end(), relay) == meeting.relays.end()) {
      meeting.relays.push_back(relay);
    }
    m.on_route(RouteInfo{relay->endpoint(), false});
  }
}

bool BasePlatform::reconnect(MeetingId meeting, ParticipantId participant) {
  auto it = meetings_.find(meeting);
  if (it == meetings_.end()) return false;
  Meeting& mt = it->second;
  for (auto& m : mt.members) {
    if (m.id != participant) continue;
    if (mt.p2p || m.relay != nullptr) return true;  // still/already routed
    if (!reattach_member(mt, m)) return false;
    refresh_subscriptions(mt);
    return true;
  }
  return false;  // left the meeting meanwhile
}

bool BasePlatform::reattach_member(Meeting& meeting, Member& member) {
  if (placer_ != nullptr) {
    // Fleet failover: reconnect lands on the spare-capacity target the
    // placer picked at crash time, not on the dead relay.
    RelayServer* relay = placer_->rehome(meeting.id, member.id);
    if (relay == nullptr || relay->crashed()) return false;
    relay->add_participant(meeting.id, member.id, client_endpoint(member));
    member.relay = relay;
    if (std::find(meeting.relays.begin(), meeting.relays.end(), relay) == meeting.relays.end()) {
      meeting.relays.push_back(relay);
    }
    member.on_route(RouteInfo{relay->endpoint(), false});
    return true;
  }
  // Zoom/Webex: the session relay is fixed for the meeting's lifetime, so a
  // rejoin goes back to the same server — and fails until it restarts.
  if (meeting.relays.empty()) return false;
  RelayServer* relay = meeting.relays.front();
  if (relay->crashed()) return false;
  relay->add_participant(meeting.id, member.id, client_endpoint(member));
  member.relay = relay;
  member.on_route(RouteInfo{relay->endpoint(), false});
  return true;
}

void BasePlatform::refresh_subscriptions(Meeting& meeting) {
  if (meeting.p2p) return;  // P2P: the full stream flows directly
  // Senders in join order — the meeting host (the broadcaster in every
  // experiment) is displayed as the main stream.
  for (auto& receiver : meeting.members) {
    if (receiver.relay == nullptr) continue;
    std::vector<SenderInfo> senders;
    for (const auto& m : meeting.members) {
      if (m.id != receiver.id && m.ref.sends_video) {
        senders.push_back(SenderInfo{m.id, m.ref.device});
      }
    }
    receiver.relay->set_subscriptions(
        meeting.id, receiver.id,
        subscriptions(traits_.id, receiver.ref.view, receiver.ref.device, senders));
  }
}

// ----------------------------------------------------------------------- Zoom

ZoomPlatform::ZoomPlatform(net::Network& network, std::uint64_t seed)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kZoom,
                       .media_port = 8801,
                       .p2p_for_two = true,
                       .supports_gallery = true,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(90),
                   },
                   seed) {}

ZoomPlatform::ZoomPlatform(net::Network& network, const PlatformConfig& config)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kZoom,
                       .media_port = 8801,
                       .p2p_for_two = true,
                       .supports_gallery = true,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(90),
                   },
                   config) {}

void ZoomPlatform::assign_routes(Meeting& meeting) {
  if (placer_ != nullptr) {
    // Fleet deployment: all media terminates on managed relays, so the
    // two-party P2P short-circuit below is deliberately bypassed.
    fleet_assign(meeting);
    return;
  }
  if (traits_.p2p_for_two && meeting.members.size() == 2 && meeting.relays.empty()) {
    // Two-party: direct peer-to-peer streaming on the clients' own ports.
    meeting.p2p = true;
    Member& a = meeting.members[0];
    Member& b = meeting.members[1];
    a.on_route(RouteInfo{client_endpoint(b), true});
    b.on_route(RouteInfo{client_endpoint(a), true});
    return;
  }
  if (meeting.members.size() < 2) return;  // host waiting alone: no media path yet
  if (meeting.relays.empty()) {
    // First time we need a relay (3rd participant arrived, or no-P2P build):
    // provision in the host's US region / load-balanced US region.
    RelayServer* relay =
        allocator_.zoom_session_relay(meeting.members.front().ref.host->location());
    meeting.relays.push_back(relay);
    meeting.p2p = false;
  }
  RelayServer* relay = meeting.relays.front();
  for (auto& m : meeting.members) {
    if (m.relay == relay) continue;
    relay->add_participant(meeting.id, m.id, client_endpoint(m));
    m.relay = relay;
    m.on_route(RouteInfo{relay->endpoint(), false});
  }
}

// ---------------------------------------------------------------------- Webex

WebexPlatform::WebexPlatform(net::Network& network, std::uint64_t seed, WebexTier tier)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kWebex,
                       .media_port = 9000,
                       .p2p_for_two = false,
                       .supports_gallery = true,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(45),
                   },
                   seed),
      tier_(tier) {}

WebexPlatform::WebexPlatform(net::Network& network, const PlatformConfig& config, WebexTier tier)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kWebex,
                       .media_port = 9000,
                       .p2p_for_two = false,
                       .supports_gallery = true,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(45),
                   },
                   config),
      tier_(tier) {}

void WebexPlatform::assign_routes(Meeting& meeting) {
  if (placer_ != nullptr) {
    fleet_assign(meeting);
    return;
  }
  if (meeting.relays.empty()) {
    meeting.relays.push_back(
        tier_ == WebexTier::kPaid
            ? allocator_.webex_paid_session_relay(meeting.members.front().ref.host->location())
            : allocator_.webex_session_relay());
  }
  RelayServer* relay = meeting.relays.front();
  for (auto& m : meeting.members) {
    if (m.relay == relay) continue;
    relay->add_participant(meeting.id, m.id, client_endpoint(m));
    m.relay = relay;
    m.on_route(RouteInfo{relay->endpoint(), false});
  }
}

// ----------------------------------------------------------------------- Meet

MeetPlatform::MeetPlatform(net::Network& network, std::uint64_t seed)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kMeet,
                       .media_port = 19305,
                       .p2p_for_two = false,
                       .supports_gallery = false,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(40),
                   },
                   seed) {}

MeetPlatform::MeetPlatform(net::Network& network, const PlatformConfig& config)
    : BasePlatform(network,
                   PlatformTraits{
                       .id = PlatformId::kMeet,
                       .media_port = 19305,
                       .p2p_for_two = false,
                       .supports_gallery = false,
                       .max_tiles = 4,
                       .audio_rate = DataRate::kbps(40),
                   },
                   config) {}

void MeetPlatform::assign_routes(Meeting& meeting) {
  if (placer_ != nullptr) {
    fleet_assign(meeting);
    return;
  }
  for (auto& m : meeting.members) {
    if (m.relay != nullptr) continue;
    RelayServer* fe = allocator_.meet_front_end(*m.ref.host);
    fe->add_participant(meeting.id, m.id, client_endpoint(m));
    m.relay = fe;
    if (std::find(meeting.relays.begin(), meeting.relays.end(), fe) == meeting.relays.end()) {
      meeting.relays.push_back(fe);
    }
    m.on_route(RouteInfo{fe->endpoint(), false});
  }
  // Full mesh among this meeting's front-ends.
  for (RelayServer* a : meeting.relays) {
    for (RelayServer* b : meeting.relays) {
      if (a != b) a->link_peer(meeting.id, b);
    }
  }
}

bool MeetPlatform::reattach_member(Meeting& meeting, Member& member) {
  // Under a fleet placer the failover path is platform-agnostic.
  if (placer_ != nullptr) return BasePlatform::reattach_member(meeting, member);
  // Meet re-resolves the client's front-end (stickiness usually lands on the
  // same one, so the rejoin keeps failing until it restarts).
  RelayServer* fe = allocator().meet_front_end(*member.ref.host);
  if (fe == nullptr || fe->crashed()) return false;
  fe->add_participant(meeting.id, member.id, client_endpoint(member));
  member.relay = fe;
  if (std::find(meeting.relays.begin(), meeting.relays.end(), fe) == meeting.relays.end()) {
    meeting.relays.push_back(fe);
  }
  // The crash wiped the front-end's peer links; re-mesh both directions
  // (link_peer is idempotent for links that survived).
  for (RelayServer* a : meeting.relays) {
    for (RelayServer* b : meeting.relays) {
      if (a != b) a->link_peer(meeting.id, b);
    }
  }
  member.on_route(RouteInfo{fe->endpoint(), false});
  return true;
}

std::unique_ptr<BasePlatform> make_platform(PlatformId id, net::Network& network,
                                            std::uint64_t seed) {
  return make_platform(id, network, PlatformConfig{.seed = seed});
}

std::unique_ptr<BasePlatform> make_platform(PlatformId id, net::Network& network,
                                            const PlatformConfig& config) {
  switch (id) {
    case PlatformId::kZoom: return std::make_unique<ZoomPlatform>(network, config);
    case PlatformId::kWebex: return std::make_unique<WebexPlatform>(network, config);
    case PlatformId::kMeet: return std::make_unique<MeetPlatform>(network, config);
  }
  throw std::invalid_argument{"unknown platform"};
}

}  // namespace vc::platform
