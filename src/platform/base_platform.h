// Shared meeting/membership bookkeeping for the three platforms; concrete
// subclasses implement only relay selection and routing (assign_routes).
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "platform/infrastructure.h"
#include "platform/platform.h"
#include "platform/rate_policy.h"

namespace vc::platform {

/// Pluggable meeting-placement policy (implemented by fleet::RelayFleet).
/// When installed on a platform it REPLACES the platform's native relay
/// steering for every meeting: each member is homed on the relay the placer
/// picks (Zoom's two-party P2P short-circuit included — a fleet deployment
/// terminates all media on managed infrastructure). Implementations must be
/// deterministic and draw no RNG: placement decisions are part of the
/// byte-identity contract.
class MeetingPlacer {
 public:
  virtual ~MeetingPlacer() = default;

  /// Relay to home (meeting, member) on; nullptr means "no capacity" and the
  /// member stays unrouted. Called once per member, in join order.
  virtual RelayServer* home_for(MeetingId meeting, ParticipantId member,
                                const GeoPoint& member_location) = 0;

  /// Load bookkeeping: a member left / the meeting ended.
  virtual void on_member_left(MeetingId meeting, ParticipantId member) = 0;
  virtual void on_meeting_ended(MeetingId meeting) = 0;

  /// A relay crashed: release its load and precompute failover targets for
  /// every member it was serving. Called before members are detached.
  virtual void on_relay_crashed(RelayServer* relay) = 0;

  /// Failover target for a disconnected member (spare-capacity re-homing
  /// decided at crash time). nullptr while nothing can serve it — the
  /// client keeps backing off, exactly like the native rejoin path.
  virtual RelayServer* rehome(MeetingId meeting, ParticipantId member) = 0;
};

class BasePlatform : public VcaPlatform {
 public:
  BasePlatform(net::Network& network, PlatformTraits traits, std::uint64_t seed);
  /// Full-config construction: seeds the allocator and, when
  /// config.fan_out_shards > 0, provisions the shard pool every allocated
  /// relay shares (sized per config.shard_workers; 0 resolved workers means
  /// relays run their shards inline — staged path, no threads).
  BasePlatform(net::Network& network, PlatformTraits traits, const PlatformConfig& config);

  const PlatformTraits& traits() const override { return traits_; }

  MeetingId create_meeting(const ClientRef& host,
                           std::function<void(RouteInfo)> on_route) override;
  ParticipantId join(MeetingId meeting, const ClientRef& client,
                     std::function<void(RouteInfo)> on_route) override;
  void leave(MeetingId meeting, ParticipantId participant) override;
  void end_meeting(MeetingId meeting) override;
  void set_view_mode(MeetingId meeting, ParticipantId participant, ViewMode view) override;
  int participant_count(MeetingId meeting) const override;

  RelayAllocator& allocator() { return allocator_; }

  /// The construction-time config (clients read default_client_abr from it).
  const PlatformConfig& config() const { return config_; }

  /// Control-plane notification that `relay` crashed: every member routed
  /// through it loses its relay binding and gets RouteInfo{} pushed (the
  /// unspecified endpoint — clients stop sending and report a lost
  /// connection). Meeting relay lists stay intact, so a reconnect attempted
  /// while the relay is still down fails and the client keeps backing off.
  void notify_relay_crashed(RelayServer* relay);

  /// Client-driven re-join after a lost route: re-registers the member with
  /// its serving relay/front-end, pushes a fresh route and re-establishes
  /// subscriptions. Returns true once routed (or if already routed); false
  /// while the infrastructure is still down — callers back off and retry.
  bool reconnect(MeetingId meeting, ParticipantId participant);

  /// Installs `placer` (borrowed; must outlive the platform, nullptr to
  /// uninstall) as the routing authority for meetings assigned from now on.
  /// Install before any meeting is created: mixing native-steered and
  /// placer-steered meetings in one platform instance is unsupported.
  void set_placer(MeetingPlacer* placer) { placer_ = placer; }
  MeetingPlacer* placer() { return placer_; }

  /// Instruments every relay this platform allocates from now on.
  void set_metrics(MetricsRegistry* registry) { allocator_.set_metrics(registry); }

  /// Traces every relay this platform allocates from now on.
  void set_tracer(Tracer* tracer) { allocator_.set_tracer(tracer); }

  /// The pool relays shard their fan-out on; nullptr when fan-out is serial
  /// or the shards run inline (exposed so tests can assert the resolution).
  ShardPool* shard_pool() { return shard_pool_.get(); }

 protected:
  struct Member {
    ParticipantId id = 0;
    ClientRef ref;
    std::function<void(RouteInfo)> on_route;
    RelayServer* relay = nullptr;
  };
  struct Meeting {
    MeetingId id = 0;
    std::vector<Member> members;
    std::vector<RelayServer*> relays;
    bool p2p = false;
    ParticipantId next_participant = 1;
  };

  /// Platform-specific: picks relays/front-ends and pushes RouteInfo to
  /// every member whose routing changed (or to all of them).
  virtual void assign_routes(Meeting& meeting) = 0;

  /// Platform-specific re-attachment of one disconnected member. The default
  /// (Zoom/Webex: single session relay) re-registers with the meeting's
  /// relay; Meet re-resolves the client's front-end and re-meshes the peer
  /// links the crash wiped. Returns false while the target is still crashed.
  virtual bool reattach_member(Meeting& meeting, Member& member);

  /// Placer-driven routing: homes every unrouted member on the relay the
  /// installed MeetingPlacer picks. Subclass assign_routes overrides
  /// delegate here (and return) whenever a placer is installed.
  void fleet_assign(Meeting& meeting);

  /// Recomputes every member's subscriptions from current membership and
  /// view modes and pushes them to the serving relays.
  void refresh_subscriptions(Meeting& meeting);

  net::Endpoint client_endpoint(const Member& m) const {
    return net::Endpoint{m.ref.host->ip(), m.ref.media_port};
  }

  net::Network& network_;
  PlatformTraits traits_;
  PlatformConfig config_;
  /// Declared before allocator_: the allocator hands the pool pointer to
  /// every relay it creates, and relays must never outlive the pool.
  std::unique_ptr<ShardPool> shard_pool_;
  RelayAllocator allocator_;
  MeetingPlacer* placer_ = nullptr;
  std::unordered_map<MeetingId, Meeting> meetings_;
  MeetingId next_meeting_ = 1;
};

/// Zoom: one US relay per session near the host's US region (load-balanced
/// across US regions for non-US hosts); direct P2P for two-party calls.
class ZoomPlatform final : public BasePlatform {
 public:
  explicit ZoomPlatform(net::Network& network, std::uint64_t seed = 11);
  ZoomPlatform(net::Network& network, const PlatformConfig& config);

 private:
  void assign_routes(Meeting& meeting) override;
};

/// Webex subscription tier. The paper's findings hold for the free tier;
/// with a paid subscription, Webex provisions relays near the meeting
/// (Section 6: RTTs < 20 ms from US-west and Europe).
enum class WebexTier { kFree, kPaid };

/// Webex: one relay per session — always US-east on the free tier, nearest
/// site on the paid tier.
class WebexPlatform final : public BasePlatform {
 public:
  explicit WebexPlatform(net::Network& network, std::uint64_t seed = 22,
                         WebexTier tier = WebexTier::kFree);
  WebexPlatform(net::Network& network, const PlatformConfig& config,
                WebexTier tier = WebexTier::kFree);

  WebexTier tier() const { return tier_; }

 private:
  void assign_routes(Meeting& meeting) override;
  WebexTier tier_;
};

/// Meet: per-client nearby front-ends, meetings relayed across front-ends.
class MeetPlatform final : public BasePlatform {
 public:
  explicit MeetPlatform(net::Network& network, std::uint64_t seed = 33);
  MeetPlatform(net::Network& network, const PlatformConfig& config);

 private:
  void assign_routes(Meeting& meeting) override;
  bool reattach_member(Meeting& meeting, Member& member) override;
};

/// Factory: the platform under test by id.
std::unique_ptr<BasePlatform> make_platform(PlatformId id, net::Network& network,
                                            std::uint64_t seed = 7);
std::unique_ptr<BasePlatform> make_platform(PlatformId id, net::Network& network,
                                            const PlatformConfig& config);

}  // namespace vc::platform
