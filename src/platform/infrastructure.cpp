#include "platform/infrastructure.h"

#include <limits>
#include <stdexcept>

namespace vc::platform {

const std::vector<Site>& platform_sites(PlatformId id) {
  // Approximate datacenter coordinates. Zoom/Webex free tier: US only
  // (Section 4.2.2); Meet: cross-continental presence including Europe.
  static const std::vector<Site> kZoomSites = {
      {"zoom-us-east", {38.95, -77.45}},     // N. Virginia
      {"zoom-us-central", {32.78, -96.80}},  // Dallas
      {"zoom-us-west", {37.35, -121.95}},    // San Jose
  };
  static const std::vector<Site> kWebexSites = {
      {"webex-us-east", {38.95, -77.45}},    // N. Virginia (everything)
  };
  static const std::vector<Site> kMeetSites = {
      {"meet-us-east", {33.10, -80.00}},     // S. Carolina
      {"meet-us-central", {41.22, -95.86}},  // Iowa
      {"meet-us-west", {45.60, -121.18}},    // Oregon
      {"meet-eu-west", {53.33, -6.25}},      // Dublin
      {"meet-eu-belgium", {50.45, 4.45}},    // St. Ghislain
      {"meet-eu-london", {51.51, -0.13}},    // London
      {"meet-eu-frankfurt", {50.11, 8.68}},  // Frankfurt
      {"meet-eu-zurich", {47.38, 8.54}},     // Zurich
      {"meet-eu-paris", {48.86, 2.35}},      // Paris
  };
  switch (id) {
    case PlatformId::kZoom: return kZoomSites;
    case PlatformId::kWebex: return kWebexSites;
    case PlatformId::kMeet: return kMeetSites;
  }
  throw std::invalid_argument{"unknown platform"};
}

const std::vector<Site>& webex_paid_sites() {
  static const std::vector<Site> kSites = {
      {"webex-us-east", {38.95, -77.45}},     // N. Virginia
      {"webex-us-west", {37.35, -121.95}},    // San Jose
      {"webex-eu-ams", {52.37, 4.90}},        // Amsterdam
      {"webex-eu-lon", {51.51, -0.13}},       // London
      {"webex-eu-fra", {50.11, 8.68}},        // Frankfurt
  };
  return kSites;
}

RelayAllocator::RelayAllocator(net::Network& network, PlatformId platform,
                               std::uint16_t media_port, std::uint64_t seed)
    : network_(network), platform_(platform), media_port_(media_port), rng_(seed) {}

RelayServer* RelayAllocator::new_relay(const Site& site) {
  // Media-plane processing latency per platform, calibrated to the paper's
  // lag floors (Finding 1): Webex's pipeline is the leanest (~10 ms lag
  // floor), Zoom sits near 20 ms, and Meet's front-ends are slower and far
  // more variable — smaller per-site capacity, more load variation — which
  // is how Meet ends up with the worst lag despite the lowest RTTs.
  RelayServer::ForwardingDelay delay;
  switch (platform_) {
    case PlatformId::kZoom:
      delay = {millis_f(7.0), 2.0};
      break;
    case PlatformId::kWebex:
      delay = {millis_f(3.0), 1.0};
      break;
    case PlatformId::kMeet:
      delay = {millis_f(9.0), 6.0};
      break;
  }
  auto relay = std::make_unique<RelayServer>(network_,
                                             site.name + "-r" + std::to_string(relay_counter_++),
                                             site.location, media_port_, delay);
  RelayServer* ptr = relay.get();
  if (metrics_ != nullptr) ptr->attach_metrics(*metrics_);
  if (tracer_ != nullptr) ptr->set_tracer(tracer_);
  if (fan_out_shards_ > 0) ptr->set_fan_out_sharding(fan_out_pool_, fan_out_shards_);
  relays_.push_back(std::move(relay));
  return ptr;
}

const Site& RelayAllocator::nearest_site(const GeoPoint& p) const {
  const auto& sites = platform_sites(platform_);
  const Site* best = nullptr;
  double best_km = std::numeric_limits<double>::max();
  for (const auto& s : sites) {
    const double km = great_circle_km(p, s.location);
    if (km < best_km) {
      best_km = km;
      best = &s;
    }
  }
  return *best;
}

RelayServer* RelayAllocator::zoom_session_relay(const GeoPoint& host_location) {
  const auto& sites = platform_sites(PlatformId::kZoom);
  // "In the US" by longitude: the paper's US/EU vantage split.
  const bool host_in_us = host_location.lon_deg < -30.0;
  const Site& site = host_in_us ? nearest_site(host_location) : sites[rng_.index(sites.size())];
  return new_relay(site);  // fresh IP every session: 20/20 distinct endpoints
}

RelayServer* RelayAllocator::webex_session_relay() {
  // ~19.5 distinct endpoints over 20 sessions: occasional IP reuse.
  if (last_webex_relay_ != nullptr && rng_.chance(0.025)) return last_webex_relay_;
  last_webex_relay_ = new_relay(platform_sites(PlatformId::kWebex).front());
  return last_webex_relay_;
}

RelayServer* RelayAllocator::webex_paid_session_relay(const GeoPoint& host_location) {
  const auto& sites = webex_paid_sites();
  const Site* best = &sites.front();
  double best_km = std::numeric_limits<double>::max();
  for (const auto& s : sites) {
    const double km = great_circle_km(host_location, s.location);
    if (km < best_km) {
      best_km = km;
      best = &s;
    }
  }
  return new_relay(*best);
}

RelayServer* RelayAllocator::meet_front_end(const net::Host& client) {
  auto it = meet_front_ends_.find(client.ip());
  if (it == meet_front_ends_.end()) {
    const Site& site = nearest_site(client.location());
    it = meet_front_ends_.emplace(client.ip(), std::make_pair(new_relay(site), new_relay(site)))
             .first;
  }
  // Primary with p=0.92: E[distinct endpoints over 20 sessions] ≈ 1.8.
  return rng_.chance(0.92) ? it->second.first : it->second.second;
}

}  // namespace vc::platform
