// Pluggable client-side rate adaptation (ABR), in the spirit of puffer's
// ABRAlgo interface.
//
// The platforms own their measured rate policy (src/platform/rate_policy.*):
// the server pushes a target and the client follows it, which is what the
// paper could observe from outside. This module opens the counterfactual the
// follow-on literature asks about (MacMillan et al., arXiv 2105.13478): what
// if the *client* chose its encode tier from acked-chunk feedback — delivered
// bytes, inter-ack spacing, loss, a queue-delay signal — the way DASH players
// do? An AbrAlgo picks a tier from the platform's tier ladder; the VcaClient
// then encodes at that tier instead of the platform-pushed rate.
//
// Determinism contract: adapters are pure state machines over their
// observations. They own no RNG and never draw from one, so an attached
// adapter perturbs nothing outside the rates it chooses — and a disabled
// (kNone) or shadow adapter is byte-invisible (enforced by bench_fairness
// --gate in CI).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "common/units.h"

namespace vc::abr {

/// One rung of a platform's simulcast/encode ladder: a codec target bitrate
/// and the frame height it would carry at that budget.
struct Tier {
  DataRate rate;
  int height = 0;
};

/// The discrete set of encode operating points available to a client,
/// ascending by rate. Built from a platform's measured rate profile by
/// platform::tier_ladder() (rate_policy.cpp).
struct TierLadder {
  std::vector<Tier> tiers;

  int size() const { return static_cast<int>(tiers.size()); }
  bool empty() const { return tiers.empty(); }
  const Tier& at(int i) const { return tiers[static_cast<std::size_t>(clamp(i))]; }
  DataRate min_rate() const { return tiers.front().rate; }
  DataRate max_rate() const { return tiers.back().rate; }

  /// Clamps a tier index into the ladder.
  int clamp(int i) const {
    if (i < 0) return 0;
    if (i >= size()) return size() - 1;
    return i;
  }

  /// Highest tier whose rate does not exceed `budget`; 0 if even the lowest
  /// tier is above it (a client must always send *something*).
  int highest_within(DataRate budget) const {
    int best = 0;
    for (int i = 0; i < size(); ++i) {
      if (tiers[static_cast<std::size_t>(i)].rate <= budget) best = i;
    }
    return best;
  }

  /// Tier whose rate is nearest `rate` (ties resolve downward).
  int nearest(DataRate rate) const {
    int best = 0;
    std::int64_t best_err = INT64_MAX;
    for (int i = 0; i < size(); ++i) {
      const std::int64_t err =
          std::abs(tiers[static_cast<std::size_t>(i)].rate.bits_per_second() -
                   rate.bits_per_second());
      if (err < best_err) {
        best_err = err;
        best = i;
      }
    }
    return best;
  }
};

/// Acked-chunk feedback for one adaptation round, assembled by the sending
/// client from the receiver's periodic report (client::AbrFeedback).
struct AbrObservation {
  SimTime now{};
  /// Length of the feedback window the counters below cover.
  double window_seconds = 0.0;
  /// Payload bytes of this sender's media the receiver acknowledged in the
  /// window — the delivered-throughput numerator.
  std::int64_t delivered_bytes = 0;
  /// Mean spacing between acked media packets in the window (ms).
  double inter_ack_ms = 0.0;
  /// Fraction of frames the receiver saw start but never complete.
  double loss_fraction = 0.0;
  /// Self-inflicted queuing signal: the receiver's mean one-way delay in the
  /// window minus its session-minimum baseline (ms). Grows when this flow
  /// (or a competitor) is filling the bottleneck queue.
  double queue_delay_ms = 0.0;
  /// Frames in flight at the receiver (seen but incomplete) at report time.
  std::int64_t backlog_frames = 0;
  /// What the platform's pushed policy would have the client encode at.
  DataRate platform_target;
  /// The target currently applied by the encoder.
  DataRate current_target;
};

/// The adapter's choice: a ladder tier and its codec target bitrate.
struct AbrDecision {
  int tier = 0;
  DataRate target;
  int height = 0;
};

/// Strategy interface. select() is called once per receiver feedback report;
/// implementations keep whatever state they need but must stay deterministic
/// functions of their observation history (no RNG, no wall clock).
class AbrAlgo {
 public:
  virtual ~AbrAlgo() = default;
  virtual AbrDecision select(const AbrObservation& obs) = 0;
  /// Drops adaptation state (e.g. across a reconnect); the ladder stays.
  virtual void reset() { last_tier_ = -1; }

  std::string_view name() const { return name_; }
  const TierLadder& ladder() const { return ladder_; }
  /// Most recent decision's tier; -1 before the first select().
  int last_tier() const { return last_tier_; }

 protected:
  AbrAlgo(TierLadder ladder, std::string name)
      : ladder_(std::move(ladder)), name_(std::move(name)) {}

  /// Clamps `tier` into the ladder, records it, and builds the decision.
  AbrDecision decide(int tier) {
    last_tier_ = ladder_.clamp(tier);
    const Tier& t = ladder_.at(last_tier_);
    return AbrDecision{last_tier_, t.rate, t.height};
  }

  TierLadder ladder_;
  std::string name_;
  int last_tier_ = -1;
};

enum class AbrKind : std::uint8_t { kNone = 0, kBuffer = 1, kThroughput = 2, kMpc = 3 };

std::string_view abr_kind_name(AbrKind kind);

/// Construction knobs for the bundled adapters. Everything is deterministic;
/// defaults are sane for the 500 ms feedback cadence of VcaClient.
struct AbrConfig {
  AbrKind kind = AbrKind::kNone;
  /// Shadow mode: the adapter runs select() on every report but its decision
  /// is never applied — the A/B instrumentation bench_fairness --gate uses
  /// to prove the armed machinery is byte-invisible and cheap.
  bool shadow = false;

  // Buffer/backlog adapter (kBuffer).
  /// Queue-delay at/below which the adapter probes one tier up (ms).
  double low_delay_ms = 25.0;
  /// Queue-delay at/above which the adapter collapses to the bottom tier.
  double high_delay_ms = 220.0;

  // Throughput-EWMA adapter (kThroughput) and MPC prediction safety.
  double ewma_alpha = 0.3;
  /// Fraction of predicted throughput an adapter will commit to.
  double safety = 0.85;

  // MPC adapter (kMpc).
  int mpc_horizon = 3;
  /// Utility cost per tier step changed between consecutive rounds.
  double switch_penalty = 0.15;
  /// Utility cost per unit of predicted over-subscription (rate beyond
  /// safety × predicted throughput, relative to the prediction).
  double overuse_penalty = 4.0;
};

/// Factory for the bundled adapters; nullptr for kNone. The ladder must be
/// non-empty for any other kind (throws std::invalid_argument).
std::unique_ptr<AbrAlgo> make_abr(const AbrConfig& config, TierLadder ladder);

}  // namespace vc::abr
