#include "abr/abr.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace vc::abr {
namespace {

/// Delivered throughput of one observation window, in bits per second.
/// Windows too short to measure return `fallback` (the previous estimate).
double window_throughput_bps(const AbrObservation& obs, double fallback) {
  if (obs.window_seconds <= 1e-6) return fallback;
  return static_cast<double>(obs.delivered_bytes) * 8.0 / obs.window_seconds;
}

/// Backlog/queue-delay driven adapter (BBA spirit, inverted for a sender):
/// the shared queue standing in front of the receiver plays the role of the
/// playout buffer. Low queue delay = headroom, probe one tier up; high queue
/// delay = the bottleneck is filling on our account, back off — linearly down
/// the ladder between the two thresholds, straight to the floor above them.
class BufferAbr final : public AbrAlgo {
 public:
  BufferAbr(const AbrConfig& cfg, TierLadder ladder)
      : AbrAlgo(std::move(ladder), "buffer"), low_ms_(cfg.low_delay_ms),
        high_ms_(cfg.high_delay_ms) {}

  AbrDecision select(const AbrObservation& obs) override {
    // Frames stuck in flight count against the delay signal: each backlogged
    // frame is roughly one frame interval of extra queue.
    const double signal =
        obs.queue_delay_ms + 33.0 * static_cast<double>(std::max<std::int64_t>(
                                        0, obs.backlog_frames - 1));
    const int top = ladder_.size() - 1;
    int target;
    if (signal <= low_ms_) {
      target = top;
    } else if (signal >= high_ms_) {
      target = 0;
    } else {
      const double f = (high_ms_ - signal) / (high_ms_ - low_ms_);  // 1 at low, 0 at high
      target = static_cast<int>(std::floor(f * static_cast<double>(top)));
    }
    // Severe loss is a queue signal the delay estimate may lag: cap climbs.
    if (obs.loss_fraction > 0.25 && last_tier_ >= 0) target = std::min(target, last_tier_);
    // Climb gently: one tier per round once adapting, and never past the
    // platform's pushed target on the very first decision.
    const int climb_cap =
        last_tier_ < 0 ? ladder_.nearest(obs.platform_target) : last_tier_ + 1;
    return decide(std::min(target, climb_cap));
  }

 private:
  double low_ms_;
  double high_ms_;
};

/// Throughput-predictive adapter: EWMA of delivered throughput, discounted by
/// observed loss, then the highest tier fitting under safety × prediction.
class ThroughputAbr final : public AbrAlgo {
 public:
  ThroughputAbr(const AbrConfig& cfg, TierLadder ladder)
      : AbrAlgo(std::move(ladder), "throughput"), alpha_(cfg.ewma_alpha), safety_(cfg.safety) {}

  AbrDecision select(const AbrObservation& obs) override {
    const double measured = window_throughput_bps(obs, estimate_bps_);
    if (measured > 0.0) {
      estimate_bps_ = estimate_bps_ <= 0.0
                          ? measured
                          : alpha_ * measured + (1.0 - alpha_) * estimate_bps_;
    }
    double usable = estimate_bps_ * safety_;
    // Loss means the delivered estimate already flatters the path: haircut.
    if (obs.loss_fraction > 0.0) usable *= std::max(0.25, 1.0 - obs.loss_fraction);
    if (usable <= 0.0) {
      // Nothing measured yet: follow the platform's pushed target.
      return decide(ladder_.nearest(obs.platform_target));
    }
    return decide(ladder_.highest_within(
        DataRate::bps(static_cast<std::int64_t>(usable))));
  }

  void reset() override {
    AbrAlgo::reset();
    estimate_bps_ = 0.0;
  }

 private:
  double alpha_;
  double safety_;
  double estimate_bps_ = 0.0;
};

/// MPC-style lookahead: harmonic-mean throughput prediction over the recent
/// windows, then exhaustive search over tier plans of length `horizon`
/// maximizing Σ [log-quality − switch penalty − over-subscription penalty].
/// Only the plan's first step is applied (receding horizon). The ladder is
/// small (≤ 8 rungs) and the horizon short, so the search is a few hundred
/// candidate plans per feedback report.
class MpcAbr final : public AbrAlgo {
 public:
  MpcAbr(const AbrConfig& cfg, TierLadder ladder)
      : AbrAlgo(std::move(ladder), "mpc"), horizon_(std::max(1, cfg.mpc_horizon)),
        safety_(cfg.safety), switch_penalty_(cfg.switch_penalty),
        overuse_penalty_(cfg.overuse_penalty) {}

  AbrDecision select(const AbrObservation& obs) override {
    const double measured = window_throughput_bps(obs, 0.0);
    if (measured > 0.0) {
      history_.push_back(measured);
      if (history_.size() > kHistory) history_.pop_front();
    }
    if (history_.empty()) return decide(ladder_.nearest(obs.platform_target));

    // Harmonic mean under-weights optimistic spikes (robust MPC prediction).
    double inv_sum = 0.0;
    for (const double t : history_) inv_sum += 1.0 / t;
    const double predicted = static_cast<double>(history_.size()) / inv_sum;
    const double usable = predicted * safety_ *
                          (obs.loss_fraction > 0.0
                               ? std::max(0.25, 1.0 - obs.loss_fraction)
                               : 1.0);

    const int first = best_first_step(usable);
    return decide(first);
  }

  void reset() override {
    AbrAlgo::reset();
    history_.clear();
  }

 private:
  static constexpr std::size_t kHistory = 5;

  double step_utility(int tier, int prev_tier, double usable_bps) const {
    const double rate = static_cast<double>(ladder_.at(tier).rate.bits_per_second());
    const double floor = static_cast<double>(ladder_.min_rate().bits_per_second());
    double u = std::log(rate / floor + 1.0);
    if (prev_tier >= 0) u -= switch_penalty_ * static_cast<double>(std::abs(tier - prev_tier));
    if (usable_bps > 0.0 && rate > usable_bps) {
      u -= overuse_penalty_ * (rate - usable_bps) / usable_bps;
    }
    return u;
  }

  /// Depth-first enumeration of tier plans; returns the best plan's first
  /// tier. Ties resolve to the lowest tier (iteration ascends, strict >).
  int best_first_step(double usable_bps) const {
    int best_first = 0;
    double best_value = -1e300;
    struct Frame {
      int depth;
      int prev;
      double value;
      int first;
    };
    std::vector<Frame> stack;
    stack.push_back({0, last_tier_, 0.0, -1});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      if (f.depth == horizon_) {
        if (f.value > best_value) {
          best_value = f.value;
          best_first = f.first;
        }
        continue;
      }
      // Push descending so ascending tiers are *popped* first, keeping the
      // lowest-tier-wins tie-break of the recursive formulation.
      for (int t = ladder_.size() - 1; t >= 0; --t) {
        stack.push_back({f.depth + 1, t, f.value + step_utility(t, f.prev, usable_bps),
                         f.depth == 0 ? t : f.first});
      }
    }
    return best_first;
  }

  int horizon_;
  double safety_;
  double switch_penalty_;
  double overuse_penalty_;
  std::deque<double> history_;
};

}  // namespace

std::string_view abr_kind_name(AbrKind kind) {
  switch (kind) {
    case AbrKind::kNone: return "none";
    case AbrKind::kBuffer: return "buffer";
    case AbrKind::kThroughput: return "throughput";
    case AbrKind::kMpc: return "mpc";
  }
  return "?";
}

std::unique_ptr<AbrAlgo> make_abr(const AbrConfig& config, TierLadder ladder) {
  if (config.kind == AbrKind::kNone) return nullptr;
  if (ladder.empty()) throw std::invalid_argument{"abr: empty tier ladder"};
  switch (config.kind) {
    case AbrKind::kBuffer: return std::make_unique<BufferAbr>(config, std::move(ladder));
    case AbrKind::kThroughput:
      return std::make_unique<ThroughputAbr>(config, std::move(ladder));
    case AbrKind::kMpc: return std::make_unique<MpcAbr>(config, std::move(ladder));
    case AbrKind::kNone: break;
  }
  return nullptr;
}

}  // namespace vc::abr
