// Mobile CPU usage model (Fig 19a, Table 4).
//
// CPU demand is built from first principles — app/UI base + per-Mbps decode
// cost + composition/render when the screen is on + camera encode when the
// camera is on — with per-client coefficients reflecting the paper's
// observations (Meet's heavier pipeline, Webex's screen-off waste and
// gallery inefficiency, Zoom's gallery savings arriving via its lower
// gallery data rate). Low-end devices scale demand by their slower cores and
// saturate near two full cores.
#pragma once

#include "common/rng.h"
#include "mobile/device.h"

namespace vc::mobile {

/// Instantaneous workload facts the model converts to CPU%.
struct WorkloadState {
  double download_mbps = 0.0;  // decoded/displayed incoming video
  double upload_mbps = 0.0;    // camera encode output
  bool screen_on = true;
  bool camera_on = false;
  platform::ViewMode view = platform::ViewMode::kFullScreen;
  int visible_tiles = 1;  // streams currently composited
};

/// Per-client-app coefficients (in S10-class cumulative CPU percent).
struct CpuCoefficients {
  double base = 40.0;             // app/UI overhead, screen on
  double decode_per_mbps = 60.0;  // video decode + color conversion
  double render = 50.0;           // composition to display
  double gallery_overhead = 0.0;  // extra per-tile composition cost
  double screen_off_base = 30.0;  // residual with screen off
  double encode_per_mp = 10.0;    // camera pipeline, per megapixel
};

const CpuCoefficients& cpu_coefficients(platform::PlatformId id);

class CpuModel {
 public:
  CpuModel(platform::PlatformId platform, const DeviceProfile& device, std::uint64_t seed);

  /// Expected CPU% for a workload (no noise) — used by tests/ablation.
  double expected(const WorkloadState& w) const;
  /// One 3-second sample with measurement noise.
  double sample(const WorkloadState& w);

 private:
  const CpuCoefficients& c_;
  DeviceProfile device_;
  Rng rng_;
};

}  // namespace vc::mobile
