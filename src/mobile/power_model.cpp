#include "mobile/power_model.h"

namespace vc::mobile {

PowerModel::PowerModel(PowerCoefficients c) : c_(c) {}

double PowerModel::current_ma(double cpu_pct, const WorkloadState& w) const {
  double ma = c_.base_ma + c_.cpu_ma_per_pct * cpu_pct;
  if (w.screen_on) ma += c_.screen_ma;
  const double mbps = w.download_mbps + w.upload_mbps;
  ma += c_.radio_ma + c_.radio_ma_per_mbps * mbps;
  if (w.camera_on) ma += c_.camera_ma;
  return ma;
}

}  // namespace vc::mobile
