#include "mobile/resource_monitor.h"

#include <algorithm>

namespace vc::mobile {
namespace {
constexpr auto kSampleInterval = seconds(3);
}

ResourceMonitor::ResourceMonitor(client::VcaClient& client, const DeviceProfile& device,
                                 MobileScenario scenario, std::uint64_t seed)
    : client_(client),
      device_(device),
      scenario_(scenario),
      capture_(client.host()),
      cpu_model_(client.platform().traits().id, device, seed),
      power_model_(),
      meter_(device) {}

void ResourceMonitor::start(SimDuration duration) {
  window_start_ = client_.host().network().now();
  end_ = window_start_ + duration;
  running_ = true;
  last_record_index_ = capture_.size();
  client_.host().network().loop().schedule_after(kSampleInterval, [this] { tick(); });
}

WorkloadState ResourceMonitor::current_workload() const {
  const ScenarioSettings s = scenario_settings(scenario_);
  WorkloadState w;
  w.screen_on = s.screen_on;
  w.camera_on = s.camera_on;
  // The client's live view, not the scenario default — Table 4 overrides it.
  // A gallery request on a platform without gallery support (Meet) changes
  // nothing on screen, so it changes nothing in the workload either.
  w.view = client_.view_mode();
  if (w.view == platform::ViewMode::kGallery &&
      !client_.platform().traits().supports_gallery) {
    w.view = platform::ViewMode::kFullScreen;
  }
  w.visible_tiles = std::min(4, std::max(1, client_.active_video_streams()));
  return w;
}

void ResourceMonitor::tick() {
  if (!running_) return;
  // Window rates from the capture delta since the last sample.
  const auto trace = capture_.trace();
  std::int64_t down = 0;
  std::int64_t up = 0;
  for (std::size_t i = last_record_index_; i < trace.records.size(); ++i) {
    if (trace.records[i].dir == net::Direction::kIncoming) {
      down += trace.records[i].l7_len;
    } else {
      up += trace.records[i].l7_len;
    }
  }
  last_record_index_ = trace.records.size();

  WorkloadState w = current_workload();
  w.download_mbps = static_cast<double>(down) * 8.0 / kSampleInterval.seconds() / 1e6;
  w.upload_mbps = static_cast<double>(up) * 8.0 / kSampleInterval.seconds() / 1e6;

  const double cpu = cpu_model_.sample(w);
  cpu_samples_.push_back(cpu);
  meter_.add_sample(power_model_.current_ma(cpu, w), kSampleInterval);

  if (client_.host().network().now() >= end_) {
    running_ = false;
    return;
  }
  client_.host().network().loop().schedule_after(kSampleInterval, [this] { tick(); });
}

DataRate ResourceMonitor::download_rate() const {
  const auto trace = capture_.trace();
  const capture::RateAnalyzer analyzer{trace};
  return analyzer.average(window_start_).download;
}

DataRate ResourceMonitor::upload_rate() const {
  const auto trace = capture_.trace();
  const capture::RateAnalyzer analyzer{trace};
  return analyzer.average(window_start_).upload;
}

}  // namespace vc::mobile
