#include "mobile/device.h"

#include <stdexcept>

namespace vc::mobile {

const DeviceProfile& galaxy_s10() {
  static const DeviceProfile kS10{
      .name = "S10",
      .cores = 8,
      .perf_cost = 1.0,
      .cpu_ceiling = 780.0,
      .camera_mp = 10.0,
      .camera_rate = DataRate::kbps(1200),
      .battery_mah = 3400.0,
      .device_class = platform::DeviceClass::kMobileHighEnd,
  };
  return kS10;
}

const DeviceProfile& galaxy_j3() {
  static const DeviceProfile kJ3{
      .name = "J3",
      .cores = 4,
      .perf_cost = 1.25,
      .cpu_ceiling = 215.0,  // saturates near two full cores
      .camera_mp = 5.0,
      .camera_rate = DataRate::kbps(700),  // lower-quality sensor, dim lab
      .battery_mah = 2600.0,
      .device_class = platform::DeviceClass::kMobileLowEnd,
  };
  return kJ3;
}

std::string_view scenario_name(MobileScenario s) {
  switch (s) {
    case MobileScenario::kLM: return "LM";
    case MobileScenario::kHM: return "HM";
    case MobileScenario::kLMView: return "LM-View";
    case MobileScenario::kLMVideoView: return "LM-Video-View";
    case MobileScenario::kLMOff: return "LM-Off";
  }
  return "?";
}

ScenarioSettings scenario_settings(MobileScenario s) {
  switch (s) {
    case MobileScenario::kLM:
      return {platform::ViewMode::kFullScreen, false, true, false};
    case MobileScenario::kHM:
      return {platform::ViewMode::kFullScreen, false, true, true};
    case MobileScenario::kLMView:
      return {platform::ViewMode::kGallery, false, true, false};
    case MobileScenario::kLMVideoView:
      return {platform::ViewMode::kGallery, true, true, false};
    case MobileScenario::kLMOff:
      return {platform::ViewMode::kAudioOnly, false, false, false};
  }
  throw std::invalid_argument{"unknown scenario"};
}

}  // namespace vc::mobile
