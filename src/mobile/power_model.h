// Battery/power model — the Monsoon power-meter analog (Fig 19c).
//
// Instantaneous current draw is assembled from platform-independent device
// components: idle base, screen backlight, CPU (proportional to cumulative
// CPU%), radio (base + per-Mbps), and camera. Integrated over a session it
// yields %/hour of the J3's 2600 mAh battery: ~35–40%/h for video with the
// screen on, ~40%/h with the camera on, and roughly half that audio-only —
// the paper's headline mobile numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "mobile/cpu_model.h"
#include "mobile/device.h"

namespace vc::mobile {

struct PowerCoefficients {
  double base_ma = 160.0;       // SoC + wakelocks + WiFi idle
  double screen_ma = 260.0;     // backlight + display pipeline
  double cpu_ma_per_pct = 2.1;  // per cumulative CPU percent
  double radio_ma = 45.0;       // active radio baseline
  double radio_ma_per_mbps = 38.0;
  double camera_ma = 130.0;
};

class PowerModel {
 public:
  explicit PowerModel(PowerCoefficients c = {});

  /// Instantaneous draw in mA.
  double current_ma(double cpu_pct, const WorkloadState& w) const;

  const PowerCoefficients& coefficients() const { return c_; }

 private:
  PowerCoefficients c_;
};

/// Integrates sampled current into battery drain, like the Monsoon's
/// fine-grained readings.
class PowerMeter {
 public:
  explicit PowerMeter(const DeviceProfile& device) : device_(device) {}

  void add_sample(double current_ma, SimDuration dt) {
    mah_ += current_ma * dt.seconds() / 3600.0;
    elapsed_ = elapsed_ + dt;
  }

  double consumed_mah() const { return mah_; }
  /// Percent of the device battery drained per hour at the observed rate.
  double battery_pct_per_hour() const {
    if (elapsed_.seconds() <= 0.0) return 0.0;
    const double ma_avg = mah_ / (elapsed_.seconds() / 3600.0);
    return ma_avg / device_.battery_mah * 100.0;
  }

 private:
  DeviceProfile device_;
  double mah_ = 0.0;
  SimDuration elapsed_{};
};

}  // namespace vc::mobile
