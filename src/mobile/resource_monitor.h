// Resource monitor for a mobile client: samples CPU (every 3 s, as the
// paper's adb-based monitor does), integrates power, and computes the
// download data rate from the device's own pcap — producing the per-scenario
// statistics of Fig 19 and Table 4.
#pragma once

#include <vector>

#include "capture/rate_analyzer.h"
#include "capture/trace.h"
#include "client/vca_client.h"
#include "common/stats.h"
#include "mobile/cpu_model.h"
#include "mobile/power_model.h"

namespace vc::mobile {

class ResourceMonitor {
 public:
  ResourceMonitor(client::VcaClient& client, const DeviceProfile& device, MobileScenario scenario,
                  std::uint64_t seed);

  /// Starts sampling for `duration` (samples every 3 s).
  void start(SimDuration duration);
  bool running() const { return running_; }

  const std::vector<double>& cpu_samples() const { return cpu_samples_; }
  BoxplotSummary cpu_boxplot() const { return boxplot(cpu_samples_); }
  double battery_pct_per_hour() const { return meter_.battery_pct_per_hour(); }
  /// Mean L7 download rate over the monitored window.
  DataRate download_rate() const;
  DataRate upload_rate() const;

 private:
  void tick();
  WorkloadState current_workload() const;

  client::VcaClient& client_;
  DeviceProfile device_;
  MobileScenario scenario_;
  capture::PacketCapture capture_;
  CpuModel cpu_model_;
  PowerModel power_model_;
  PowerMeter meter_;

  SimTime window_start_{};
  SimTime end_{};
  bool running_ = false;
  std::size_t last_record_index_ = 0;
  std::vector<double> cpu_samples_;
};

}  // namespace vc::mobile
