#include "mobile/cpu_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vc::mobile {

const CpuCoefficients& cpu_coefficients(platform::PlatformId id) {
  // Calibrated against Fig 19a: on the S10, Zoom/Webex sit near 150–175%
  // while Meet adds ~50%; Webex barely benefits from gallery and keeps
  // ~125% with the screen off, while Zoom/Meet drop to 25–50%.
  static const CpuCoefficients kZoom{
      .base = 35.0,
      .decode_per_mbps = 95.0,
      .render = 45.0,
      .gallery_overhead = 0.0,
      .screen_off_base = 30.0,
      .encode_per_mp = 10.0,
  };
  static const CpuCoefficients kWebex{
      .base = 60.0,
      .decode_per_mbps = 40.0,
      .render = 50.0,
      .gallery_overhead = 6.0,   // per-tile: gallery *raises* CPU slightly
      .screen_off_base = 105.0,  // keeps decoding with the screen off
      .encode_per_mp = 10.0,
  };
  static const CpuCoefficients kMeet{
      .base = 100.0,  // heavier web pipeline
      .decode_per_mbps = 30.0,
      .render = 60.0,
      .gallery_overhead = 0.0,
      .screen_off_base = 40.0,
      .encode_per_mp = 10.0,
  };
  switch (id) {
    case platform::PlatformId::kZoom: return kZoom;
    case platform::PlatformId::kWebex: return kWebex;
    case platform::PlatformId::kMeet: return kMeet;
  }
  throw std::invalid_argument{"unknown platform"};
}

CpuModel::CpuModel(platform::PlatformId platform, const DeviceProfile& device, std::uint64_t seed)
    : c_(cpu_coefficients(platform)), device_(device), rng_(seed) {}

double CpuModel::expected(const WorkloadState& w) const {
  double demand = 0.0;
  if (w.screen_on) {
    demand += c_.base + c_.render;
    // Gallery tiles are quarter-resolution streams: decoding them costs
    // less per megabit than one full-screen stream (Table 4: Zoom's gallery
    // rate doubles with N while its CPU stays flat).
    const double decode_eff = w.view == platform::ViewMode::kGallery ? 0.55 : 1.0;
    demand += c_.decode_per_mbps * w.download_mbps * decode_eff;
    if (w.view == platform::ViewMode::kGallery) {
      demand += c_.gallery_overhead * static_cast<double>(std::max(1, w.visible_tiles));
    }
  } else {
    demand += c_.screen_off_base;
    // Webex's screen-off residual still includes stream decode.
    demand += 0.2 * c_.decode_per_mbps * w.download_mbps;
  }
  if (w.camera_on) demand += c_.encode_per_mp * device_.camera_mp + 20.0 * w.upload_mbps;
  // Slower cores cost more cumulative CPU; saturation near the ceiling.
  demand *= device_.perf_cost;
  if (demand > device_.cpu_ceiling) {
    demand = device_.cpu_ceiling + 0.05 * (demand - device_.cpu_ceiling);
  }
  return demand;
}

double CpuModel::sample(const WorkloadState& w) {
  const double mean = expected(w);
  // Scheduler/measurement noise: heavier-tailed upward than downward.
  const double noisy = mean * std::exp(rng_.normal(0.0, 0.07));
  return std::clamp(noisy, 0.0, static_cast<double>(device_.cores) * 100.0);
}

}  // namespace vc::mobile
