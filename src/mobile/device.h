// Android device profiles and the device/UI scenarios of Section 5.
//
// The testbed's two phones (Table 2): Samsung Galaxy S10 (high-end,
// octa-core, 8 GB) and Galaxy J3 (low-end, quad-core, 2 GB, removable
// 2600 mAh battery wired to a Monsoon power meter).
#pragma once

#include <string>
#include <string_view>

#include "platform/platform.h"

namespace vc::mobile {

struct DeviceProfile {
  std::string name;
  int cores = 4;
  /// Relative cost multiplier of running the same work on this device's
  /// slower cores (1.0 = S10 class).
  double perf_cost = 1.0;
  /// Sustainable CPU ceiling, in cumulative percent (100% = one core).
  /// Low-end devices saturate near two full cores under thermal/scheduler
  /// pressure, which is why all three clients converge near 200% on the J3.
  double cpu_ceiling = 780.0;
  /// Camera sensor megapixels (drives encode cost when the camera is on).
  double camera_mp = 10.0;
  /// Camera upload rate the device's encoder produces.
  DataRate camera_rate = DataRate::kbps(1200);
  double battery_mah = 3400.0;
  platform::DeviceClass device_class = platform::DeviceClass::kMobileHighEnd;
};

/// Samsung Galaxy S10 (Android 11, octa-core, 1440x3040).
const DeviceProfile& galaxy_s10();
/// Samsung Galaxy J3 (Android 8, quad-core, 2 GB, 720x1280, 2600 mAh).
const DeviceProfile& galaxy_j3();

/// The five device/UI settings of Fig 19 (Section 5): incoming low-motion /
/// high-motion in full screen, gallery view, gallery + camera on, and
/// screen-off (audio only, "driving scenario").
enum class MobileScenario { kLM, kHM, kLMView, kLMVideoView, kLMOff };

std::string_view scenario_name(MobileScenario s);

/// UI/config mapping for a scenario.
struct ScenarioSettings {
  platform::ViewMode view = platform::ViewMode::kFullScreen;
  bool camera_on = false;
  bool screen_on = true;
  bool high_motion = false;
};
ScenarioSettings scenario_settings(MobileScenario s);

}  // namespace vc::mobile
