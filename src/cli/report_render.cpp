#include "cli/report_render.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace vc::cli {
namespace {

long long int_field(const json::Value& obj, const char* key, long long fallback = 0) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? static_cast<long long>(v->number_value) : fallback;
}

/// Renders one {name: {count,mean,stddev,min,max,sum}} stats section.
void render_stats_section(std::string& out, const char* title, const json::Value& section,
                          const std::string& filter) {
  if (!section.is_object() || section.object_items.empty()) return;
  TextTable table{{"name", "count", "mean", "stddev", "min", "max", "sum"}};
  std::size_t rows = 0;
  for (const auto& [name, stats] : section.object_items) {
    if (!name_matches(name, filter) || !stats.is_object()) continue;
    auto field = [&stats](const char* key) {
      const json::Value* v = stats.find(key);
      return v != nullptr && v->is_number() ? TextTable::num(v->number_value, 4) : std::string("-");
    };
    const json::Value* count = stats.find("count");
    table.add_row({name,
                   count != nullptr && count->is_number()
                       ? std::to_string(static_cast<long long>(count->number_value))
                       : "-",
                   field("mean"), field("stddev"), field("min"), field("max"), field("sum")});
    ++rows;
  }
  if (rows == 0) return;
  out += title;
  out += "\n";
  out += table.render();
}

/// ASCII CDF from quantile samples named <base>.p10 / .p25 / .p50 / .p75 /
/// .p90 (the shape runner-converted benches record per distribution).
void render_cdf(std::string& out, const json::Value& samples, const std::string& base) {
  constexpr int kQuantiles[] = {10, 25, 50, 75, 90};
  std::vector<std::pair<int, double>> points;
  for (int q : kQuantiles) {
    const json::Value* s = samples.find(base + ".p" + std::to_string(q));
    if (s == nullptr || !s->is_object()) continue;
    const json::Value* mean = s->find("mean");
    if (mean != nullptr && mean->is_number()) points.emplace_back(q, mean->number_value);
  }
  if (points.empty()) {
    out += "no quantile samples " + base + ".p10..p90 in report\n";
    return;
  }
  double max_v = 0.0;
  for (const auto& [q, v] : points) max_v = std::max(max_v, v);
  out += base + " CDF\n";
  constexpr int kWidth = 48;
  for (const auto& [q, v] : points) {
    const int bar = max_v > 0.0 ? static_cast<int>(v / max_v * kWidth + 0.5) : 0;
    std::string line = "  p" + std::to_string(q);
    while (line.size() < 6) line += ' ';
    line += "|";
    line += std::string(static_cast<std::size_t>(bar), '#');
    line += std::string(static_cast<std::size_t>(kWidth - bar) + 1, ' ');
    line += TextTable::num(v, 2) + "\n";
    out += line;
  }
}

}  // namespace

RenderResult render_report(const std::string& label, const std::string& json_text,
                           const ReportOptions& options) {
  RenderResult result;
  json::Value root;
  try {
    root = json::parse(json_text);
  } catch (const std::exception& e) {
    result.err = label + ": " + e.what() + "\n";
    result.exit_code = 2;
    return result;
  }
  if (!root.is_object()) {
    result.err = label + ": report root is not a JSON object\n";
    result.exit_code = 2;
    return result;
  }
  // Accept both the full to_json() shape and a bare aggregate_json().
  const json::Value* agg = root.find("aggregate");
  if (agg == nullptr) agg = &root;

  const json::Value* name = agg->find("label");
  result.out += "report " + label;
  result.out += "  label=" +
                (name != nullptr && name->is_string() ? name->string_value : std::string("?"));
  result.out += "  sessions=" + std::to_string(int_field(*agg, "sessions", -1));
  result.out +=
      "  base_seed=" + std::to_string(static_cast<unsigned long long>(int_field(*agg, "base_seed"))) +
      "\n";
  const json::Value* failures = agg->find("failures");
  if (failures != nullptr && failures->is_array() && !failures->array_items.empty()) {
    result.out += "FAILURES: " + std::to_string(failures->array_items.size()) + " task(s) threw\n";
  }
  const json::Value* trace = agg->find("trace");
  if (trace != nullptr && trace->is_object()) {
    const long long dropped = int_field(*trace, "dropped");
    result.out += "trace: " + std::to_string(int_field(*trace, "records")) + " records (" +
                  std::to_string(int_field(*trace, "spans")) + " spans, " +
                  std::to_string(int_field(*trace, "instants")) + " instants, " +
                  std::to_string(int_field(*trace, "counter_samples")) + " counter samples), " +
                  std::to_string(dropped) + " dropped\n";
    if (dropped > 0) {
      result.out += "WARNING: trace ring wrapped — " + std::to_string(dropped) +
                    " oldest record(s) were dropped; early-session spans are missing.\n"
                    "         Re-run with a larger trace capacity for full coverage.\n";
    }
  }
  const json::Value* timeline = agg->find("timeline");
  if (timeline != nullptr && timeline->is_object()) {
    const long long dropped = int_field(*timeline, "dropped");
    result.out += "timeline: " + std::to_string(int_field(*timeline, "samples")) + " samples over " +
                  std::to_string(int_field(*timeline, "columns")) + " columns, " +
                  std::to_string(dropped) + " dropped";
    const long long rules = int_field(*timeline, "health_rules");
    if (rules > 0) {
      result.out += "; health: " + std::to_string(rules) + " rule(s), " +
                    std::to_string(int_field(*timeline, "health_events")) + " event(s), " +
                    std::to_string(int_field(*timeline, "health_breaches")) + " breach(es)";
    }
    result.out += "\n";
    if (dropped > 0) {
      result.out += "WARNING: timeline ring wrapped — " + std::to_string(dropped) +
                    " oldest sample(s) were dropped from the exported window.\n";
    }
    if (int_field(*timeline, "write_failures") > 0) {
      result.out += "WARNING: " + std::to_string(int_field(*timeline, "write_failures")) +
                    " timeline file(s) failed to write.\n";
    }
  }
  // Throughput rates ride the full to_json() shape only (they derive from
  // wall-clock, so they live beside threads/wall_seconds, not in the
  // aggregate); a bare-aggregate report simply has none to show.
  const json::Value* rates = root.find("rates");
  if (rates != nullptr && rates->is_object() && !rates->object_items.empty()) {
    result.out += "rates:";
    for (const auto& [key, value] : rates->object_items) {
      if (!value.is_number()) continue;
      result.out += "  " + key + "=" + TextTable::num(value.number_value, 1);
    }
    result.out += "\n";
  }

  const json::Value* samples = agg->find("samples");
  if (options.list) {
    // Bare metric keys, one per line — greppable, and exactly the names
    // `--filter` and `--cdf BASE` (for <base>.p10..p90 families) accept.
    auto list_section = [&](const char* section, const json::Value* v) {
      if (v == nullptr || !v->is_object()) return;
      for (const auto& [key, _] : v->object_items) {
        if (name_matches(key, options.filter)) result.out += std::string(section) + " " + key + "\n";
      }
    };
    list_section("sample", samples);
    list_section("counter", agg->find("counters"));
    list_section("gauge", agg->find("gauges"));
    list_section("gauge_hwm", agg->find("gauge_hwm"));
    list_section("histogram", agg->find("histograms"));
    return result;
  }
  if (options.has_cdf) {
    // A report without a samples section is old/minimal, not broken: say so
    // and exit clean (exit 2 is reserved for unusable input).
    if (samples == nullptr || !samples->is_object()) {
      result.out += "report has no samples section; nothing to plot for " + options.cdf_base + "\n";
      return result;
    }
    render_cdf(result.out, *samples, options.cdf_base);
    return result;
  }
  if (samples != nullptr) render_stats_section(result.out, "samples", *samples, options.filter);
  const json::Value* counters = agg->find("counters");
  if (counters != nullptr && counters->is_object() && !counters->object_items.empty()) {
    TextTable table{{"counter", "value"}};
    std::size_t rows = 0;
    for (const auto& [key, value] : counters->object_items) {
      if (!name_matches(key, options.filter) || !value.is_number()) continue;
      table.add_row({key, std::to_string(static_cast<long long>(value.number_value))});
      ++rows;
    }
    if (rows > 0) result.out += "counters\n" + table.render();
  }
  const json::Value* gauges = agg->find("gauges");
  if (gauges != nullptr) render_stats_section(result.out, "gauges", *gauges, options.filter);
  const json::Value* gauge_hwm = agg->find("gauge_hwm");
  if (gauge_hwm != nullptr) {
    render_stats_section(result.out, "gauge high-water marks", *gauge_hwm, options.filter);
  }
  const json::Value* histograms = agg->find("histograms");
  if (histograms != nullptr) {
    render_stats_section(result.out, "histograms", *histograms, options.filter);
  }
  return result;
}

}  // namespace vc::cli
