// Run-report rendering (the `vcbench_cli report` subcommand).
//
// Renders tables / metric listings / ASCII CDFs from a saved run report, as
// written by runner::RunReport::to_json() or aggregate_json(). Tolerant of
// report vintage: every section beyond the label header is optional, so
// reports written before a section existed (samples-only PR 4 reports up
// through pre-timeline PR 8 reports) render whatever they have and exit 0.
// Only an unreadable input — malformed JSON, or a root that is not an
// object — exits 2.
#pragma once

#include <string>

#include "cli/cli_render.h"

namespace vc::cli {

struct ReportOptions {
  /// Case-insensitive substring filter on metric names.
  std::string filter;
  /// true: list bare metric keys (one per line) instead of tables.
  bool list = false;
  /// When set, render an ASCII CDF from quantile samples `<cdf_base>.p10`
  /// .. `.p90` instead of the tables.
  bool has_cdf = false;
  std::string cdf_base;
};

/// `label` names the input in headers/messages (normally the file path);
/// `json_text` is the report file's contents.
RenderResult render_report(const std::string& label, const std::string& json_text,
                           const ReportOptions& options);

}  // namespace vc::cli
