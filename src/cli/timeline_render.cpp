#include "cli/timeline_render.h"

#include <algorithm>
#include <stdexcept>

#include "common/json.h"
#include "common/table.h"
#include "common/tracer.h"

namespace vc::cli {
namespace {

std::size_t size_field(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) throw std::runtime_error{std::string("timeline JSON: missing ") + key};
  return static_cast<std::size_t>(v->number_value);
}

std::vector<double> number_array(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_array()) throw std::runtime_error{std::string("timeline JSON: missing array ") + key};
  std::vector<double> out;
  out.reserve(v->array_items.size());
  for (const json::Value& item : v->array_items) {
    if (!item.is_number()) throw std::runtime_error{std::string("timeline JSON: non-number in ") + key};
    out.push_back(item.number_value);
  }
  return out;
}

/// Decodes a delta-encoded track (counter values or histogram counts) into
/// cumulative values: base + running sum.
std::vector<double> decode_cumulative(double base, const std::vector<double>& deltas) {
  std::vector<double> out;
  out.reserve(deltas.size());
  double cum = base;
  for (double d : deltas) {
    cum += d;
    out.push_back(cum);
  }
  return out;
}

/// 10-level ASCII sparkline scaled to the series' min..max, bucketing by max
/// when the series outgrows `width`. A flat nonzero series renders as the
/// lowest ink level (not blank) so it stays visible.
std::string sparkline(const std::vector<double>& values, int width) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr int kLevelCount = 10;
  if (values.empty() || width <= 0) return "";
  std::vector<double> buckets;
  if (static_cast<int>(values.size()) <= width) {
    buckets = values;
  } else {
    buckets.resize(static_cast<std::size_t>(width));
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const std::size_t lo = b * values.size() / buckets.size();
      const std::size_t hi = std::max(lo + 1, (b + 1) * values.size() / buckets.size());
      double peak = values[lo];
      for (std::size_t i = lo + 1; i < hi && i < values.size(); ++i) peak = std::max(peak, values[i]);
      buckets[b] = peak;
    }
  }
  double lo = buckets[0];
  double hi = buckets[0];
  for (double v : buckets) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(buckets.size());
  for (double v : buckets) {
    int level;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * (kLevelCount - 1) + 0.5);
    } else {
      level = v != 0.0 ? 1 : 0;  // flat series: visible unless it's all zero
    }
    out += kLevels[std::clamp(level, 0, kLevelCount - 1)];
  }
  return out;
}

void append_series_json(std::string& out, const TimelineSeries& series, bool first) {
  if (!first) out += ",";
  out += "{\"name\":\"";
  Tracer::append_json_escaped(out, series.name.c_str());
  out += "\",\"offset\":" + std::to_string(series.offset) + ",\"values\":[";
  for (std::size_t i = 0; i < series.values.size(); ++i) {
    if (i) out += ",";
    out += json::format_number(series.values[i]);
  }
  out += "]}";
}

}  // namespace

TimelineDoc parse_timeline(const std::string& json_text) {
  const json::Value root = json::parse(json_text);
  if (!root.is_object()) throw std::runtime_error{"timeline JSON: root is not an object"};
  const json::Value* timeline = root.find("timeline");
  if (timeline == nullptr) timeline = &root;
  if (!timeline->is_object() || timeline->find("ts_us") == nullptr) {
    throw std::runtime_error{"timeline JSON: no timeline object (expected ts_us)"};
  }

  TimelineDoc doc;
  doc.interval_us = static_cast<std::int64_t>(size_field(*timeline, "interval_us"));
  doc.total_samples = size_field(*timeline, "total_samples");
  doc.samples = size_field(*timeline, "samples");
  doc.dropped = size_field(*timeline, "dropped");
  for (double ts : number_array(*timeline, "ts_us")) {
    doc.ts_us.push_back(static_cast<std::int64_t>(ts));
  }
  if (doc.ts_us.size() != doc.samples) {
    throw std::runtime_error{"timeline JSON: ts_us length disagrees with samples"};
  }
  const std::size_t oldest = doc.total_samples - doc.samples;

  auto column_offset = [&](const json::Value& col) {
    const std::size_t start = size_field(col, "start");
    if (start < oldest || start > doc.total_samples) {
      throw std::runtime_error{"timeline JSON: column start outside retained window"};
    }
    return start - oldest;
  };
  auto column_name = [](const json::Value& col) {
    const json::Value* name = col.find("name");
    if (name == nullptr || !name->is_string()) throw std::runtime_error{"timeline JSON: column without name"};
    return name->string_value;
  };

  const json::Value* counters = timeline->find("counters");
  if (counters != nullptr && counters->is_array()) {
    for (const json::Value& col : counters->array_items) {
      TimelineSeries series;
      series.name = column_name(col);
      series.offset = column_offset(col);
      const json::Value* base = col.find("base");
      series.values = decode_cumulative(
          base != nullptr && base->is_number() ? base->number_value : 0.0,
          number_array(col, "deltas"));
      doc.series.push_back(std::move(series));
    }
  }
  const json::Value* gauges = timeline->find("gauges");
  if (gauges != nullptr && gauges->is_array()) {
    for (const json::Value& col : gauges->array_items) {
      TimelineSeries series;
      series.name = column_name(col);
      series.offset = column_offset(col);
      series.values = number_array(col, "values");
      doc.series.push_back(std::move(series));
    }
  }
  const json::Value* histograms = timeline->find("histograms");
  if (histograms != nullptr && histograms->is_array()) {
    for (const json::Value& col : histograms->array_items) {
      const std::string name = column_name(col);
      const std::size_t offset = column_offset(col);
      const json::Value* count_base = col.find("count_base");
      TimelineSeries count;
      count.name = name + ".count";
      count.offset = offset;
      count.values = decode_cumulative(
          count_base != nullptr && count_base->is_number() ? count_base->number_value : 0.0,
          number_array(col, "count_deltas"));
      doc.series.push_back(std::move(count));
      TimelineSeries mean;
      mean.name = name + ".mean";
      mean.offset = offset;
      mean.values = number_array(col, "mean");
      doc.series.push_back(std::move(mean));
      TimelineSeries max;
      max.name = name + ".max";
      max.offset = offset;
      max.values = number_array(col, "max");
      doc.series.push_back(std::move(max));
    }
  }
  for (const TimelineSeries& series : doc.series) {
    if (series.offset + series.values.size() != doc.samples && !series.values.empty()) {
      throw std::runtime_error{"timeline JSON: column '" + series.name +
                               "' does not span to the latest sample"};
    }
  }

  const json::Value* health = root.find("health");
  if (health != nullptr && health->is_object()) {
    doc.has_health = true;
    const json::Value* events = health->find("events");
    if (events != nullptr && events->is_array()) {
      for (const json::Value& ev : events->array_items) {
        if (!ev.is_object()) continue;
        HealthEventRow row;
        row.rule = ev.at("rule").as_string();
        row.begin = ev.at("type").as_string() == "begin";
        row.severity = ev.at("severity").as_string();
        row.ts_us = static_cast<std::int64_t>(ev.at("ts_us").as_number());
        row.value = ev.at("value").as_number();
        doc.health_events.push_back(std::move(row));
      }
    }
    const json::Value* breaches = health->find("breaches");
    if (breaches != nullptr && breaches->is_object()) {
      for (const auto& [rule, count] : breaches->object_items) {
        if (count.is_number()) {
          doc.breaches.emplace_back(rule, static_cast<std::int64_t>(count.number_value));
        }
      }
    }
  }
  return doc;
}

RenderResult render_timeline(const std::string& label, const std::string& json_text,
                             const TimelineOptions& options) {
  RenderResult result;
  TimelineDoc doc;
  try {
    doc = parse_timeline(json_text);
  } catch (const std::exception& e) {
    result.err = label + ": " + e.what() + "\n";
    result.exit_code = 2;
    return result;
  }

  if (options.json) {
    std::string out = "{\"interval_us\":" + std::to_string(doc.interval_us);
    out += ",\"samples\":" + std::to_string(doc.samples);
    out += ",\"dropped\":" + std::to_string(doc.dropped);
    out += ",\"ts_us\":[";
    for (std::size_t i = 0; i < doc.ts_us.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(doc.ts_us[i]);
    }
    out += "],\"series\":[";
    bool first = true;
    for (const TimelineSeries& series : doc.series) {
      if (!name_matches(series.name, options.metric)) continue;
      append_series_json(out, series, first);
      first = false;
    }
    out += "]}\n";
    result.out = out;
    return result;
  }

  result.out += "timeline " + label + ": " + std::to_string(doc.samples) + " sample(s)";
  if (doc.dropped > 0) result.out += " (+" + std::to_string(doc.dropped) + " dropped)";
  result.out += ", interval " + TextTable::num(static_cast<double>(doc.interval_us) / 1000.0, 1) +
                " ms, " + std::to_string(doc.series.size()) + " series\n";
  if (doc.dropped > 0) {
    result.out += "WARNING: timeline ring wrapped — the oldest " + std::to_string(doc.dropped) +
                  " sample(s) are gone from this window.\n";
  }

  if (options.metric.empty()) {
    TextTable table{{"series", "n", "first", "last", "min", "max"}};
    for (const TimelineSeries& series : doc.series) {
      if (series.values.empty()) {
        table.add_row({series.name, "0", "-", "-", "-", "-"});
        continue;
      }
      double lo = series.values[0];
      double hi = series.values[0];
      for (double v : series.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      table.add_row({series.name, std::to_string(series.values.size()),
                     TextTable::num(series.values.front(), 3), TextTable::num(series.values.back(), 3),
                     TextTable::num(lo, 3), TextTable::num(hi, 3)});
    }
    result.out += table.render();
  } else {
    std::size_t matched = 0;
    for (const TimelineSeries& series : doc.series) {
      if (!name_matches(series.name, options.metric)) continue;
      ++matched;
      double lo = 0.0;
      double hi = 0.0;
      if (!series.values.empty()) {
        lo = hi = series.values[0];
        for (double v : series.values) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      result.out += series.name + "  [" + TextTable::num(lo, 3) + " .. " + TextTable::num(hi, 3) +
                    "]\n  |" + sparkline(series.values, options.width) + "|\n";
    }
    if (matched == 0) {
      result.out += "no series matches '" + options.metric + "' (run without --metric to list)\n";
    }
  }

  if (doc.has_health) {
    if (!doc.health_events.empty()) {
      TextTable table{{"t (s)", "rule", "edge", "severity", "value"}};
      for (const HealthEventRow& ev : doc.health_events) {
        table.add_row({TextTable::num(static_cast<double>(ev.ts_us) / 1e6, 3), ev.rule,
                       ev.begin ? "BREACH" : "recover", ev.severity, TextTable::num(ev.value, 3)});
      }
      result.out += "SLO events\n" + table.render();
    } else {
      result.out += "SLO: no breaches\n";
    }
    for (const auto& [rule, count] : doc.breaches) {
      if (count > 0) result.out += "  " + rule + ": " + std::to_string(count) + " breach(es)\n";
    }
  }
  return result;
}

}  // namespace vc::cli
