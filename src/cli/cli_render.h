// Shared types for the CLI rendering library.
//
// vcbench_cli's analysis subcommands (report / trace / profile / timeline)
// render through these pure functions: file contents in, formatted text out,
// no I/O. That keeps every renderer unit-testable against canned inputs —
// including old-format run reports from earlier PRs, which must keep
// rendering (missing optional sections are skipped, not errors).
#pragma once

#include <algorithm>
#include <cctype>
#include <string>

namespace vc::cli {

/// What a subcommand would do: text for stdout, text for stderr, and the
/// process exit code. Exit 2 means the input itself was unusable (unreadable
/// file, malformed JSON); a readable report that merely lacks a section
/// renders what it has and exits 0.
struct RenderResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

/// Case-insensitive substring match so `--filter zoom` finds "Zoom/n3/...".
inline bool name_matches(const std::string& name, const std::string& filter) {
  if (filter.empty()) return true;
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
  };
  return lower(name).find(lower(filter)) != std::string::npos;
}

}  // namespace vc::cli
