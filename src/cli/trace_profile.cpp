#include "cli/trace_profile.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace vc::cli {
namespace {

struct Span {
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  const std::string* name = nullptr;
};

struct NameAgg {
  std::size_t count = 0;
  std::int64_t total_us = 0;
  std::int64_t self_us = 0;
};

struct Chain {
  const std::string* label = nullptr;  // source trace
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::size_t records = 0;
  double max_depth = 0.0;
};

/// Splits each span's duration into self vs nested-child time with a
/// containment stack over ts-sorted spans. A child's contribution to its
/// parent is clamped to the parent's window, so overlapping (non-nested)
/// spans can't drive self time negative.
void accumulate_self_times(std::vector<Span>& spans, std::map<std::string, NameAgg>& by_name) {
  std::stable_sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // parents (longer) before their children
  });
  struct Open {
    std::int64_t end_us = 0;
    std::int64_t child_us = 0;
    const Span* span = nullptr;
  };
  std::vector<Open> stack;
  auto close = [&](const Open& open) {
    NameAgg& agg = by_name[*open.span->name];
    ++agg.count;
    agg.total_us += open.span->dur_us;
    agg.self_us += std::max<std::int64_t>(0, open.span->dur_us - open.child_us);
    if (!stack.empty()) {
      // Credit this span's full window to the parent as child time (clamped
      // to the parent's remaining extent).
      const std::int64_t begin = open.span->ts_us;
      const std::int64_t end = std::min(open.end_us, stack.back().end_us);
      if (end > begin) stack.back().child_us += end - begin;
    }
  };
  for (const Span& span : spans) {
    while (!stack.empty() && span.ts_us >= stack.back().end_us) {
      const Open open = stack.back();
      stack.pop_back();
      close(open);
    }
    stack.push_back(Open{span.ts_us + span.dur_us, 0, &span});
  }
  while (!stack.empty()) {
    const Open open = stack.back();
    stack.pop_back();
    close(open);
  }
}

}  // namespace

RenderResult render_profile(const std::vector<TraceInput>& traces, const ProfileOptions& options) {
  RenderResult result;
  if (traces.empty()) {
    result.err = "profile: no trace files\n";
    result.exit_code = 2;
    return result;
  }

  std::map<std::string, NameAgg> by_name;
  std::vector<Chain> chains;
  long long dropped_total = 0;
  std::size_t parsed = 0;

  // Interned span names must outlive the Span/Chain pointers into them.
  std::vector<std::unique_ptr<std::string>> names;
  std::map<std::string, const std::string*> name_index;
  auto intern = [&](const std::string& s) {
    auto [it, inserted] = name_index.try_emplace(s, nullptr);
    if (inserted) {
      names.push_back(std::make_unique<std::string>(s));
      it->second = names.back().get();
    }
    return it->second;
  };

  for (const TraceInput& input : traces) {
    json::Value root;
    try {
      root = json::parse(input.json_text);
    } catch (const std::exception& e) {
      result.err += input.label + ": " + e.what() + "\n";
      continue;
    }
    const json::Value* events = root.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      result.err += input.label + ": no traceEvents array\n";
      continue;
    }
    ++parsed;
    const std::string* label = intern(input.label);

    std::vector<Span> spans;
    Chain current;
    bool in_chain = false;
    auto flush_chain = [&] {
      if (in_chain && current.records > 1) chains.push_back(current);
      in_chain = false;
    };
    for (const auto& ev : events->array_items) {
      if (!ev.is_object()) continue;
      const json::Value* name = ev.find("name");
      const json::Value* ph = ev.find("ph");
      if (name == nullptr || !name->is_string() || ph == nullptr || !ph->is_string()) continue;
      const json::Value* ts = ev.find("ts");
      const std::int64_t ts_us =
          ts != nullptr && ts->is_number() ? static_cast<std::int64_t>(ts->number_value) : 0;
      if (ph->string_value == "X" && name_matches(name->string_value, options.filter)) {
        const json::Value* dur = ev.find("dur");
        Span span;
        span.ts_us = ts_us;
        span.dur_us =
            dur != nullptr && dur->is_number() ? static_cast<std::int64_t>(dur->number_value) : 0;
        span.name = intern(name->string_value);
        spans.push_back(span);
      }
      // Busy chains: consecutive loop.exec records (file order == execution
      // order) whose post-dequeue depth stays > 0. Depth 0 means the loop
      // drained — the burst is over.
      if (name->string_value == "loop.exec") {
        double depth = 0.0;
        const json::Value* args = ev.find("args");
        if (args != nullptr && args->is_object()) {
          const json::Value* value = args->find("value");
          if (value != nullptr && value->is_number()) depth = value->number_value;
        }
        if (depth > 0.0) {
          if (!in_chain) {
            current = Chain{};
            current.label = label;
            current.begin_us = ts_us;
            in_chain = true;
          }
          current.end_us = ts_us;
          ++current.records;
          current.max_depth = std::max(current.max_depth, depth);
        } else {
          if (in_chain) {
            // The draining record itself ends the chain.
            current.end_us = ts_us;
            ++current.records;
          }
          flush_chain();
        }
      }
    }
    flush_chain();
    accumulate_self_times(spans, by_name);

    const json::Value* other = root.find("otherData");
    if (other != nullptr && other->is_object()) {
      const json::Value* dropped = other->find("dropped_records");
      if (dropped != nullptr && dropped->is_number()) {
        dropped_total += static_cast<long long>(dropped->number_value);
      }
    }
  }
  if (parsed == 0) {
    result.exit_code = 2;
    return result;
  }

  if (dropped_total > 0) {
    result.out += "WARNING: trace ring wrapped — " + std::to_string(dropped_total) +
                  " record(s) dropped across the input; totals undercount early activity.\n"
                  "         Re-run with a larger Tracer capacity for a complete profile.\n";
  }
  result.out += "profile over " + std::to_string(parsed) + " trace(s)\n";

  // Hot spans by self time.
  std::vector<std::pair<const std::string*, const NameAgg*>> ranked;
  ranked.reserve(by_name.size());
  for (const auto& [name, agg] : by_name) ranked.emplace_back(&name, &agg);
  std::stable_sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second->self_us != b.second->self_us) return a.second->self_us > b.second->self_us;
    return a.second->total_us > b.second->total_us;
  });
  TextTable table{{"span", "count", "total (ms)", "self (ms)", "self %"}};
  std::int64_t self_sum = 0;
  for (const auto& [name, agg] : ranked) self_sum += agg->self_us;
  const std::size_t rows = std::min(options.top, ranked.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const NameAgg& agg = *ranked[i].second;
    table.add_row({*ranked[i].first, std::to_string(agg.count),
                   TextTable::num(static_cast<double>(agg.total_us) / 1000.0, 3),
                   TextTable::num(static_cast<double>(agg.self_us) / 1000.0, 3),
                   self_sum > 0
                       ? TextTable::num(100.0 * static_cast<double>(agg.self_us) /
                                            static_cast<double>(self_sum),
                                        1)
                       : "-"});
  }
  if (rows > 0) {
    result.out += "hot spans (by self time, sim-time ms)\n" + table.render();
    if (ranked.size() > rows) {
      result.out += "(" + std::to_string(ranked.size() - rows) + " more span name(s); raise --top)\n";
    }
  } else {
    result.out += "no spans matched\n";
  }

  // Longest busy chains.
  std::stable_sort(chains.begin(), chains.end(), [](const Chain& a, const Chain& b) {
    const std::int64_t ea = a.end_us - a.begin_us;
    const std::int64_t eb = b.end_us - b.begin_us;
    if (ea != eb) return ea > eb;
    return a.records > b.records;
  });
  if (!chains.empty()) {
    TextTable chain_table{{"trace", "begin (ms)", "extent (ms)", "events", "max depth"}};
    const std::size_t n = std::min(options.chains, chains.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Chain& c = chains[i];
      chain_table.add_row({*c.label, TextTable::num(static_cast<double>(c.begin_us) / 1000.0, 3),
                           TextTable::num(static_cast<double>(c.end_us - c.begin_us) / 1000.0, 3),
                           std::to_string(c.records), TextTable::num(c.max_depth, 0)});
    }
    result.out += "busiest loop.exec chains (loop never drained)\n" + chain_table.render();
  }
  return result;
}

}  // namespace vc::cli
