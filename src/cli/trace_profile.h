// Trace analytics (the `vcbench_cli profile` subcommand).
//
// Aggregates one or more Chrome trace-event files (as written by
// vc::Tracer::to_chrome_json(), typically a runner trace_dir's
// <task>.trace.json set) into:
//
//  - a per-span-name profile: count, total time, and self time (total minus
//    time covered by nested spans), ranked by self time;
//  - busy chains through the event loop: maximal runs of consecutive
//    `loop.exec` records whose args.value (queue depth after dequeue) stays
//    above zero. A chain is an unbroken stretch where the loop never drained
//    — the sim-time critical path through that burst of work.
//
// Pure text-in/text-out like the other renderers; a ring-wrapped input
// (otherData.dropped_records > 0) renders with a prominent WARNING since the
// missing records silently deflate every aggregate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cli/cli_render.h"

namespace vc::cli {

struct ProfileOptions {
  /// Rows in the hot-span table (ranked by self time).
  std::size_t top = 15;
  /// Busy chains reported (ranked by sim-time extent).
  std::size_t chains = 3;
  /// Case-insensitive substring filter on span names (profile table only;
  /// chains always see every loop.exec record).
  std::string filter;
};

struct TraceInput {
  std::string label;      // names the file in output/messages
  std::string json_text;  // the trace file's contents
};

RenderResult render_profile(const std::vector<TraceInput>& traces, const ProfileOptions& options);

}  // namespace vc::cli
