// Timeline rendering (the `vcbench_cli timeline` subcommand).
//
// Parses a `<task>.timeline.json` file (the MetricsTimeline::to_json()
// document the runner writes, optionally wrapped with a "health" section)
// and renders it for a terminal: an overview table of every column, ASCII
// sparklines for selected metrics, and the SLO breach events. parse_timeline
// is exposed separately so tests can check the delta decode round-trips —
// decoded cumulative counter values must exactly reproduce what the registry
// held at each retained sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cli/cli_render.h"

namespace vc::cli {

/// One decoded metric as a dense series over the retained window. Counters
/// decode to cumulative values (base + running delta sum); gauges are raw;
/// a histogram flattens to three series named <name>.count / .mean / .max.
struct TimelineSeries {
  std::string name;
  /// Offset into the retained window of this series' first value (columns
  /// discovered mid-run start late).
  std::size_t offset = 0;
  std::vector<double> values;
};

struct HealthEventRow {
  std::string rule;
  bool begin = false;
  std::string severity;
  std::int64_t ts_us = 0;
  double value = 0.0;
};

struct TimelineDoc {
  std::int64_t interval_us = 0;
  std::size_t total_samples = 0;
  std::size_t samples = 0;  // retained
  std::size_t dropped = 0;
  std::vector<std::int64_t> ts_us;  // one per retained sample
  std::vector<TimelineSeries> series;
  // Health (absent unless the run armed a monitor with rules).
  bool has_health = false;
  std::vector<HealthEventRow> health_events;
  std::vector<std::pair<std::string, std::int64_t>> breaches;  // rule -> count
};

/// Accepts both the runner's wrapper ({"timeline":{...},"health":{...}}) and
/// a bare MetricsTimeline::to_json() object. Throws std::runtime_error on
/// malformed input.
TimelineDoc parse_timeline(const std::string& json_text);

struct TimelineOptions {
  /// Case-insensitive substring filter; matching series get sparklines
  /// (empty: overview table only).
  std::string metric;
  /// Sparkline width in characters; longer series are bucketed by max.
  int width = 60;
  /// Re-emit the decoded document as JSON instead of tables.
  bool json = false;
};

RenderResult render_timeline(const std::string& label, const std::string& json_text,
                             const TimelineOptions& options);

}  // namespace vc::cli
