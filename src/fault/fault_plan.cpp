#include "fault/fault_plan.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "common/json.h"
#include "net/loss.h"
#include "net/network.h"
#include "net/shaper.h"
#include "platform/base_platform.h"

namespace vc::fault {

namespace {

net::Host* find_host(net::Network& network, const std::string& name) {
  for (const auto& h : network.hosts()) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

/// Link actions need a shaper to act on; unshaped targets get an unlimited
/// one installed at arm time (observability auto-wires via
/// set_ingress_shaper), so the action itself is a pure pointer call.
net::Host* resolve_link_target(const FaultPlan::Bindings& b, const std::string& name) {
  if (b.network == nullptr) throw std::invalid_argument{"fault plan: no network bound"};
  net::Host* host = find_host(*b.network, name);
  if (host == nullptr) throw std::invalid_argument{"fault plan: unknown host '" + name + "'"};
  if (host->ingress_shaper() == nullptr) {
    host->set_ingress_shaper(std::make_unique<net::TokenBucketShaper>(
        b.network->loop(), DataRate::unlimited()));
  }
  return host;
}

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkRate: return "link_rate";
    case FaultEvent::Kind::kLinkRamp: return "link_ramp";
    case FaultEvent::Kind::kLinkOutage: return "link_outage";
    case FaultEvent::Kind::kBurstLoss: return "burst_loss";
    case FaultEvent::Kind::kRelayCrash: return "relay_crash";
  }
  return "unknown";
}

}  // namespace

FaultPlan& FaultPlan::link_rate(SimDuration at, std::string host, DataRate rate) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkRate;
  e.at = at;
  e.host = std::move(host);
  e.rate = rate;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_ramp(SimDuration at, std::string host, DataRate from, DataRate to,
                                SimDuration over, int steps) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkRamp;
  e.at = at;
  e.host = std::move(host);
  e.rate = from;
  e.rate_end = to;
  e.duration = over;
  e.steps = steps < 1 ? 1 : steps;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::link_outage(SimDuration at, std::string host, SimDuration duration) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kLinkOutage;
  e.at = at;
  e.host = std::move(host);
  e.duration = duration;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::burst_loss(SimDuration at, double average, double mean_burst,
                                 std::string host) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kBurstLoss;
  e.at = at;
  e.host = std::move(host);
  e.loss_average = average;
  e.mean_burst = mean_burst;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::relay_crash(SimDuration at, std::size_t relay_index,
                                  SimDuration down_for, SimDuration detection) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kRelayCrash;
  e.at = at;
  e.relay_index = relay_index;
  e.duration = down_for;
  e.detection = detection;
  events_.push_back(std::move(e));
  return *this;
}

void FaultPlan::arm(const Bindings& b, SimTime origin) const {
  if (events_.empty()) return;  // an empty plan compiles to nothing at all
  if (b.network == nullptr) throw std::invalid_argument{"fault plan: no network bound"};
  net::EventLoop& loop = b.network->loop();
  MetricsRegistry* metrics = b.metrics;
  Tracer* tracer = b.tracer;

  for (const FaultEvent& e : events_) {
    const SimTime when = origin + e.at;
    switch (e.kind) {
      case FaultEvent::Kind::kLinkRate: {
        net::Host* host = resolve_link_target(b, e.host);
        const DataRate rate = e.rate;
        loop.schedule_at(when, [host, rate, metrics, tracer, &loop] {
          if (auto* sh = host->ingress_shaper()) sh->set_rate(rate);
          if (metrics) metrics->counter("fault.link_rate_changes").inc();
          if (tracer) tracer->instant("fault.link_rate", loop.now(), rate.as_kbps());
        });
        break;
      }
      case FaultEvent::Kind::kLinkRamp: {
        net::Host* host = resolve_link_target(b, e.host);
        // Compiled into `steps` equal rate steps ending at rate_end; step 0
        // (the start rate) fires at `at` so the ramp's shape is explicit.
        const std::int64_t from = e.rate.bits_per_second();
        const std::int64_t to = e.rate_end.bits_per_second();
        for (int i = 0; i <= e.steps; ++i) {
          const DataRate rate =
              DataRate::bps(from + (to - from) * static_cast<std::int64_t>(i) / e.steps);
          const SimTime tick = when + e.duration * static_cast<std::int64_t>(i) /
                                          static_cast<std::int64_t>(e.steps);
          loop.schedule_at(tick, [host, rate, metrics, tracer, &loop] {
            if (auto* sh = host->ingress_shaper()) sh->set_rate(rate);
            if (metrics) metrics->counter("fault.link_rate_changes").inc();
            if (tracer) tracer->instant("fault.link_rate", loop.now(), rate.as_kbps());
          });
        }
        break;
      }
      case FaultEvent::Kind::kLinkOutage: {
        net::Host* host = resolve_link_target(b, e.host);
        loop.schedule_at(when, [host, metrics, tracer, &loop] {
          if (auto* sh = host->ingress_shaper()) sh->set_down(true);
          if (metrics) metrics->counter("fault.outages").inc();
          if (tracer) tracer->instant("fault.outage_begin", loop.now(), 0.0);
        });
        loop.schedule_at(when + e.duration, [host, tracer, &loop] {
          if (auto* sh = host->ingress_shaper()) sh->set_down(false);
          if (tracer) tracer->instant("fault.outage_end", loop.now(), 0.0);
        });
        break;
      }
      case FaultEvent::Kind::kBurstLoss: {
        // Validate the Gilbert–Elliott targets now: a bad plan should fail
        // at arm time, not half-way through a run.
        (void)net::GilbertElliottLoss::with_average(e.loss_average, e.mean_burst);
        net::Host* host = e.host.empty() ? nullptr : resolve_link_target(b, e.host);
        net::Network* network = b.network;
        const double average = e.loss_average;
        const double mean_burst = e.mean_burst;
        loop.schedule_at(when, [host, network, average, mean_burst, metrics, tracer, &loop] {
          auto model = std::make_unique<net::GilbertElliottLoss>(
              net::GilbertElliottLoss::with_average(average, mean_burst));
          if (host != nullptr) {
            host->set_ingress_loss(std::move(model));
          } else {
            network->set_loss_model(std::move(model));
          }
          if (metrics) metrics->counter("fault.burst_loss_installs").inc();
          if (tracer) tracer->instant("fault.burst_loss", loop.now(), average);
        });
        break;
      }
      case FaultEvent::Kind::kRelayCrash: {
        if (b.platform == nullptr) {
          throw std::invalid_argument{"fault plan: relay_crash needs a bound platform"};
        }
        platform::BasePlatform* platform = b.platform;
        const std::size_t index = e.relay_index;
        // Looked up at fire time: the relay may not exist yet when the plan
        // is armed (allocation happens as meetings form).
        loop.schedule_at(when, [platform, index, metrics, tracer, &loop] {
          platform::RelayServer* relay = platform->allocator().relay_at(index);
          if (relay == nullptr || relay->crashed()) return;
          relay->crash();
          if (metrics) metrics->counter("fault.relay_crashes").inc();
          if (tracer) {
            tracer->instant("fault.relay_crash", loop.now(), static_cast<double>(index));
          }
        });
        // Clients notice only after the detection timeout; media sent in
        // that window lands on the dead relay (Stats::crash_dropped). The
        // notification fires even if the relay already restarted — the
        // restarted process lost its forwarding state, so affected clients
        // must re-join either way.
        loop.schedule_at(when + e.detection, [platform, index, tracer, &loop] {
          platform::RelayServer* relay = platform->allocator().relay_at(index);
          if (relay == nullptr) return;
          platform->notify_relay_crashed(relay);
          if (tracer) {
            tracer->instant("fault.relay_crash_detected", loop.now(),
                            static_cast<double>(index));
          }
        });
        loop.schedule_at(when + e.duration, [platform, index, metrics, tracer, &loop] {
          platform::RelayServer* relay = platform->allocator().relay_at(index);
          if (relay == nullptr || !relay->crashed()) return;
          relay->restart();
          if (metrics) metrics->counter("fault.relay_restarts").inc();
          if (tracer) {
            tracer->instant("fault.relay_restart", loop.now(), static_cast<double>(index));
          }
        });
        break;
      }
    }
  }
}

std::string FaultPlan::to_json() const {
  // json::format_fixed, not snprintf %f: the plan file must parse back with
  // from_json regardless of the host's LC_NUMERIC.
  const auto field = [](const char* key, double v, int precision = 3) {
    return std::string(", \"") + key + "\": " + json::format_fixed(v, precision);
  };
  std::string out = "{\n  \"fault_plan\": [\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    out += "    {\"kind\": \"";
    out += kind_name(e.kind);
    out += "\"";
    out += field("at_ms", e.at.millis());
    switch (e.kind) {
      case FaultEvent::Kind::kLinkRate:
        out += ", \"host\": \"" + e.host + "\"" + field("rate_kbps", e.rate.as_kbps());
        break;
      case FaultEvent::Kind::kLinkRamp:
        out += ", \"host\": \"" + e.host + "\"" + field("rate_kbps", e.rate.as_kbps()) +
               field("rate_end_kbps", e.rate_end.as_kbps()) +
               field("duration_ms", e.duration.millis()) +
               ", \"steps\": " + std::to_string(e.steps);
        break;
      case FaultEvent::Kind::kLinkOutage:
        out += ", \"host\": \"" + e.host + "\"" + field("duration_ms", e.duration.millis());
        break;
      case FaultEvent::Kind::kBurstLoss:
        out += ", \"host\": \"" + e.host + "\"" + field("average", e.loss_average, 6) +
               field("mean_burst", e.mean_burst);
        break;
      case FaultEvent::Kind::kRelayCrash:
        out += ", \"relay\": " + std::to_string(e.relay_index) +
               field("duration_ms", e.duration.millis()) +
               field("detection_ms", e.detection.millis());
        break;
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

FaultPlan FaultPlan::from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  const json::Value* list = root.is_array() ? &root : root.find("fault_plan");
  if (list == nullptr || !list->is_array()) {
    throw std::runtime_error{"fault plan JSON: expected a \"fault_plan\" array"};
  }
  FaultPlan plan;
  for (const json::Value& item : list->array_items) {
    if (!item.is_object()) throw std::runtime_error{"fault plan JSON: event is not an object"};
    const std::string kind = item.at("kind").as_string();
    const SimDuration at = millis_f(item.at("at_ms").as_number());
    auto str = [&item](const char* key) {
      const json::Value* v = item.find(key);
      return v != nullptr ? v->as_string() : std::string{};
    };
    auto num = [&item](const char* key, double fallback) {
      const json::Value* v = item.find(key);
      return v != nullptr ? v->as_number(fallback) : fallback;
    };
    if (kind == "link_rate") {
      plan.link_rate(at, str("host"), DataRate::kbps(item.at("rate_kbps").as_number()));
    } else if (kind == "link_ramp") {
      plan.link_ramp(at, str("host"), DataRate::kbps(item.at("rate_kbps").as_number()),
                     DataRate::kbps(item.at("rate_end_kbps").as_number()),
                     millis_f(item.at("duration_ms").as_number()),
                     static_cast<int>(num("steps", 8)));
    } else if (kind == "link_outage") {
      plan.link_outage(at, str("host"), millis_f(item.at("duration_ms").as_number()));
    } else if (kind == "burst_loss") {
      plan.burst_loss(at, item.at("average").as_number(), num("mean_burst", 4.0), str("host"));
    } else if (kind == "relay_crash") {
      plan.relay_crash(at, static_cast<std::size_t>(num("relay", 0)),
                       millis_f(item.at("duration_ms").as_number()),
                       millis_f(num("detection_ms", 250.0)));
    } else {
      throw std::runtime_error{"fault plan JSON: unknown kind '" + kind + "'"};
    }
  }
  return plan;
}

}  // namespace vc::fault
