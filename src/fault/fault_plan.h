// Deterministic, seeded fault injection: a FaultPlan is a scripted timeline
// of impairment events — bandwidth steps/ramps, full link outages, burst-loss
// installation, relay crashes — compiled onto the existing net::EventLoop
// when the plan is armed. The paper only measures static impairments (fixed
// last-mile caps, Figs 17–18); this subsystem is what lets vcbench ask the
// follow-on question of how each platform *reacts* to mid-call degradation.
//
// Determinism contract (same as the rest of the tree): arming and firing a
// plan draws NO randomness — every action is a pure function of the scripted
// timeline, so a faulted run is byte-identical at any thread count and any
// fan-out shard count K. The only new randomness a fault can trigger lives
// in the recovering clients' backoff jitter, which draws from controller-
// owned RNGs (see client::ClientController::enable_reconnect), never from
// the network stream. An armed-but-empty plan schedules nothing at all, so
// its hot-path cost is structurally zero (enforced by bench_fault_recovery
// --gate in CI).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/time.h"
#include "common/tracer.h"
#include "common/units.h"

namespace vc::net {
class Network;
}
namespace vc::platform {
class BasePlatform;
}

namespace vc::fault {

/// One scripted impairment. `at` is relative to the plan's arm origin, so
/// the same plan can be replayed against any phase of a run (benchmarks arm
/// at media start, making "outage 5 s into the call" seed-independent).
struct FaultEvent {
  enum class Kind {
    /// Step the target host's ingress shaper to `rate`.
    kLinkRate,
    /// Linear ramp from `rate` to `rate_end` over `duration` in `steps`
    /// equal steps (compiled into kLinkRate-equivalent actions at arm time).
    kLinkRamp,
    /// Take the target host's link fully down for `duration` (every packet
    /// submitted to the shaper is dropped), then bring it back up.
    kLinkOutage,
    /// Install a Gilbert–Elliott burst-loss model: on the target host's
    /// ingress when `host` is set, else on the core network (replacing the
    /// i.i.d. loss model).
    kBurstLoss,
    /// Crash the platform's relay #`relay_index` (creation order) for
    /// `duration`, then restart it. Clients routed through it learn of the
    /// crash `detection` later (a timeout, not an oracle) — media they sent
    /// in that window is counted as lost at the relay — and must then
    /// reconnect. Even if the relay restarts before detection, clients
    /// still re-join: the restarted process lost its forwarding state.
    kRelayCrash,
  };

  Kind kind = Kind::kLinkRate;
  SimDuration at{};
  std::string host;         // kLink* target; optional for kBurstLoss
  DataRate rate{};          // kLinkRate value / kLinkRamp start
  DataRate rate_end{};      // kLinkRamp end
  SimDuration duration{};   // outage length / relay downtime / ramp span
  int steps = 8;            // kLinkRamp resolution
  double loss_average = 0.0;  // kBurstLoss stationary loss rate
  double mean_burst = 4.0;    // kBurstLoss mean bad-state sojourn (packets)
  std::size_t relay_index = 0;  // kRelayCrash target
  /// kRelayCrash: how long clients take to notice the dead server.
  SimDuration detection = millis(250);
};

class FaultPlan {
 public:
  /// What a plan acts on when armed. `platform` is only needed for
  /// kRelayCrash (relay lookup + crashed-route notification); metrics and
  /// tracer are optional observability hooks.
  struct Bindings {
    net::Network* network = nullptr;
    platform::BasePlatform* platform = nullptr;
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
  };

  // ---- builders (fluent; events fire in timeline order regardless of the
  // order they were added in, because each compiles to its own schedule_at).
  FaultPlan& link_rate(SimDuration at, std::string host, DataRate rate);
  FaultPlan& link_ramp(SimDuration at, std::string host, DataRate from, DataRate to,
                       SimDuration over, int steps = 8);
  FaultPlan& link_outage(SimDuration at, std::string host, SimDuration duration);
  FaultPlan& burst_loss(SimDuration at, double average, double mean_burst,
                        std::string host = {});
  /// `relay_index` addresses the platform allocator's relays in creation
  /// order. Fleet relays (fleet::RelayFleet) provision through the same
  /// allocator, so a crash plan targets fleet slots too: under the rr and
  /// least-loaded policies slots first provision in ascending slot order
  /// (deterministic tie-breaking), so relay_crash(at, 0, d) crashes fleet
  /// slot 0, whose meetings the balancer fails over onto survivors.
  FaultPlan& relay_crash(SimDuration at, std::size_t relay_index, SimDuration down_for,
                         SimDuration detection = millis(250));

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Compiles the timeline onto the network's event loop, relative to
  /// `origin`. Each event becomes one scheduled action; an empty plan
  /// schedules nothing, which is why an installed-but-empty plan costs
  /// nothing on the hot path. Link targets are resolved by host name at arm
  /// time (throws std::invalid_argument for an unknown host); a target with
  /// no ingress shaper gets an unlimited one installed so rate/outage
  /// actions always have a knob to turn. Fires `fault.*` counters and
  /// tracer instants as events execute.
  void arm(const Bindings& bindings, SimTime origin) const;

  /// Plan exchange format for the CLI walkthroughs:
  /// {"fault_plan": [{"kind": "...", "at_ms": ..., ...}, ...]}.
  std::string to_json() const;
  /// Throws std::runtime_error on malformed JSON or an unknown kind.
  static FaultPlan from_json(const std::string& text);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace vc::fault
